//! Deterministic, deadlock-free, hop-minimal routing tables.
//!
//! The paper evaluates all topologies with "a routing algorithm that
//! minimizes the number of router-to-router hops" (Fig. 6 caption). This
//! module provides per-topology minimal routing that is *also* provably
//! deadlock-free via virtual-channel classes:
//!
//! * [`RoutingAlgorithm::RowColumn`] — route within the source row to the
//!   destination column, then within that column (mesh/XY, sparse Hamming,
//!   flattened butterfly). Within each 1D phase, paths are hop-minimal with
//!   at most two direction reversals; each reversal escalates the VC class,
//!   which makes the channel-dependency graph acyclic.
//! * [`RoutingAlgorithm::RingDateline`] — shorter way around the cycle,
//!   with a dateline VC-class bump (ring).
//! * [`RoutingAlgorithm::TorusDateline`] — dimension-ordered routing over
//!   the row/column cycles with a dateline class per dimension (torus,
//!   folded torus).
//! * [`RoutingAlgorithm::ECube`] — dimension-ordered bit-fixing (hypercube).
//! * [`RoutingAlgorithm::HopEscalation`] — generic minimal routing where
//!   the VC class equals the hop index (SlimNoC: diameter 2 ⇒ 2 classes).
//! * [`RoutingAlgorithm::Hierarchical`] — three-phase column / through-row
//!   / column routing for multi-die topologies (see the `hier` module docs),
//!   whose class count follows die-internal connectivity instead of
//!   network diameter.
//!
//! A [`Routes`] table comes in one of three storage forms
//! ([`RouteForm`]): the **dense** reference materializes every path as a
//! `Vec<Hop>` (O(n² · hops) memory — multi-GB at 10k tiles); the
//! **next-hop** form answers `(router, src, dst) → (out port, VC class)`
//! in O(1) from per-algorithm closed-form kernels and reconstructs paths
//! bit-identical to dense (enforced by the equivalence suite); the
//! **hierarchical** form is the next-hop analog for stitched multi-die
//! networks. Consumers that only step flits use [`Routes::port_and_class`];
//! metrics stream over reconstructed paths via [`Routes::for_each_hop`].
//!
//! Every built [`Routes`] can be checked with [`Routes::is_deadlock_free`],
//! which constructs the channel/VC-class dependency graph and verifies
//! acyclicity.

mod dense;
mod hier;
mod line;
mod next_hop;

use serde::{Deserialize, Serialize};

use crate::grid::TileId;
use crate::topology::{ChannelId, Topology, TopologyKind};

use hier::HierTable;
use next_hop::NextHopTable;

/// One hop of a routed path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hop {
    /// The directed channel taken.
    pub channel: ChannelId,
    /// The tile reached after the hop.
    pub to: TileId,
    /// The virtual-channel class the flit must use on this channel.
    pub vc_class: u8,
}

/// The routing algorithm families provided by [`build_routes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingAlgorithm {
    /// Row phase then column phase; reversal-escalating VC classes.
    RowColumn,
    /// Shorter way around the Hamiltonian cycle; dateline class.
    RingDateline,
    /// Dimension-ordered routing over row/column cycles; dateline classes.
    TorusDateline,
    /// Dimension-ordered bit fixing on the hypercube.
    ECube,
    /// Generic BFS-minimal paths; VC class = hop index.
    HopEscalation,
    /// Column / through-row / column phases for multi-die topologies;
    /// per-phase class banks.
    Hierarchical,
}

/// The natural deadlock-free minimal algorithm for each topology kind.
#[must_use]
pub fn default_algorithm(kind: TopologyKind) -> RoutingAlgorithm {
    match kind {
        TopologyKind::Ring => RoutingAlgorithm::RingDateline,
        TopologyKind::Torus | TopologyKind::FoldedTorus => RoutingAlgorithm::TorusDateline,
        TopologyKind::Hypercube => RoutingAlgorithm::ECube,
        TopologyKind::SlimNoc | TopologyKind::Custom => RoutingAlgorithm::HopEscalation,
        TopologyKind::Mesh
        | TopologyKind::FlattenedButterfly
        | TopologyKind::Ruche
        | TopologyKind::SparseHamming => RoutingAlgorithm::RowColumn,
    }
}

/// Error returned when a routing table cannot be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildRoutesError {
    /// The algorithm does not apply to this topology (e.g. `RowColumn` on a
    /// graph whose rows are not connected within themselves).
    NotApplicable {
        /// The algorithm that failed.
        algorithm: RoutingAlgorithm,
        /// Explanation of the failure.
        reason: String,
    },
    /// The (sub)graph being routed is partitioned: some ordered pair of
    /// routable tiles has no surviving path. Raised instead of a panic by
    /// the BFS-based builders and by [`degraded_routes`] when a fault mask
    /// splits the network.
    Disconnected {
        /// Explanation naming a witness pair or component count.
        reason: String,
    },
}

impl std::fmt::Display for BuildRoutesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotApplicable { algorithm, reason } => {
                write!(f, "{algorithm:?} routing not applicable: {reason}")
            }
            Self::Disconnected { reason } => {
                write!(f, "network is disconnected: {reason}")
            }
        }
    }
}

impl std::error::Error for BuildRoutesError {}

/// The storage form of a [`Routes`] table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteForm {
    /// Every path materialized as a `Vec<Hop>`; the cross-checkable
    /// reference, O(n² · hops) memory.
    Dense,
    /// Compact per-algorithm kernels; O(1) hop queries, paths
    /// reconstructed on demand, bit-identical to [`RouteForm::Dense`].
    NextHop,
    /// The compact multi-die form ([`RoutingAlgorithm::Hierarchical`]).
    Hierarchical,
}

impl RouteForm {
    /// Parses a CLI spelling (`"dense"` or `"next-hop"`). The
    /// hierarchical form is not requested directly: it is what
    /// [`default_routes_with`] upgrades `next-hop` to on multi-die
    /// topologies.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "dense" => Some(Self::Dense),
            "next-hop" | "nexthop" => Some(Self::NextHop),
            _ => None,
        }
    }

    /// The canonical spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Dense => "dense",
            Self::NextHop => "next-hop",
            Self::Hierarchical => "hierarchical",
        }
    }
}

impl std::fmt::Display for RouteForm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The storage behind a [`Routes`] table (see [`RouteForm`]).
#[derive(Debug, Clone, PartialEq)]
enum Table {
    Dense { paths: Vec<Vec<Hop>> },
    NextHop(NextHopTable),
    Hier(HierTable),
}

/// A complete deterministic routing table: one path per ordered tile pair.
///
/// # Examples
///
/// ```
/// use shg_topology::{generators, routing, Grid, TileId};
///
/// let mesh = generators::mesh(Grid::new(4, 4));
/// let routes = routing::build_routes(&mesh, routing::RoutingAlgorithm::RowColumn)
///     .expect("mesh routes");
/// assert_eq!(routes.path(TileId::new(0), TileId::new(15)).len(), 6);
/// assert!(routes.is_deadlock_free(&mesh));
///
/// // The compact form answers the same queries without materialized paths.
/// let compact = routing::build_routes_with(
///     &mesh,
///     routing::RoutingAlgorithm::RowColumn,
///     routing::RouteForm::NextHop,
/// )
/// .expect("mesh routes");
/// assert_eq!(
///     compact.path_vec(TileId::new(0), TileId::new(15)),
///     routes.path(TileId::new(0), TileId::new(15)),
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Routes {
    n: usize,
    algorithm: RoutingAlgorithm,
    num_vc_classes: u8,
    table: Table,
}

impl Routes {
    /// The path from `src` to `dst` (empty when `src == dst`).
    ///
    /// Only the dense form holds materialized paths; compact-form
    /// consumers use [`Routes::port_and_class`], [`Routes::for_each_hop`]
    /// or [`Routes::path_vec`].
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range, or on a non-dense form.
    #[must_use]
    pub fn path(&self, src: TileId, dst: TileId) -> &[Hop] {
        match &self.table {
            Table::Dense { paths } => &paths[src.index() * self.n + dst.index()],
            _ => panic!(
                "path() requires the dense route form (this is {})",
                self.form()
            ),
        }
    }

    /// The storage form of this table.
    #[must_use]
    pub fn form(&self) -> RouteForm {
        match &self.table {
            Table::Dense { .. } => RouteForm::Dense,
            Table::NextHop(_) => RouteForm::NextHop,
            Table::Hier(_) => RouteForm::Hierarchical,
        }
    }

    /// Number of VC classes the table requires. The simulator partitions
    /// its virtual channels into this many classes.
    #[must_use]
    pub fn num_vc_classes(&self) -> u8 {
        self.num_vc_classes
    }

    /// The algorithm that produced this table.
    #[must_use]
    pub fn algorithm(&self) -> RoutingAlgorithm {
        self.algorithm
    }

    /// `(out port, VC class)` at router `at` for a `src → dst` flit whose
    /// next hop is the `hop`-th of its path — the O(1) query the
    /// simulator's routing stage makes on compact forms. The out port is
    /// the channel's position in `at`'s sorted neighbor list, which is
    /// exactly how the simulator numbers router ports.
    ///
    /// # Panics
    ///
    /// Panics on the dense form (whose consumers read [`Routes::path`]
    /// and resolve ports from materialized channels), or if `at == dst`
    /// (ejection is not a routed hop).
    #[must_use]
    pub fn port_and_class(&self, at: TileId, src: TileId, dst: TileId, hop: usize) -> (u8, u8) {
        assert_ne!(at, dst, "ejection is not a routed hop");
        match &self.table {
            Table::Dense { .. } => {
                panic!("port_and_class() requires a compact route form (this is dense)")
            }
            Table::NextHop(t) => t.port_and_class(at.index(), src.index(), dst.index(), hop),
            Table::Hier(t) => t.port_and_class(at.index(), src.index(), dst.index(), hop),
        }
    }

    /// Streams the hops of `src → dst` in order without materializing the
    /// path. On compact forms this walks the table from `src`; the walk
    /// panics rather than livelocks if the table were ever inconsistent.
    pub fn for_each_hop(&self, src: TileId, dst: TileId, mut f: impl FnMut(Hop)) {
        match &self.table {
            Table::Dense { paths } => {
                for &hop in &paths[src.index() * self.n + dst.index()] {
                    f(hop);
                }
            }
            _ => {
                if src == dst {
                    return;
                }
                let (mut at, mut hop) = (src.index(), 0usize);
                while at != dst.index() {
                    assert!(hop < self.n, "routing walk exceeded {} hops", self.n);
                    let h = match &self.table {
                        Table::NextHop(t) => t.hop_at(at, src.index(), dst.index(), hop),
                        Table::Hier(t) => t.hop_at(at, src.index(), dst.index(), hop),
                        Table::Dense { .. } => unreachable!(),
                    };
                    f(h);
                    at = h.to.index();
                    hop += 1;
                }
            }
        }
    }

    /// The path from `src` to `dst`, materialized. Works on every form;
    /// on the dense form this clones the stored path.
    #[must_use]
    pub fn path_vec(&self, src: TileId, dst: TileId) -> Vec<Hop> {
        let mut hops = Vec::new();
        self.for_each_hop(src, dst, |hop| hops.push(hop));
        hops
    }

    /// Hop count from `src` to `dst`. O(1) on the dense and hierarchical
    /// forms; a table walk on the next-hop form.
    #[must_use]
    pub fn hop_count(&self, src: TileId, dst: TileId) -> usize {
        match &self.table {
            Table::Dense { paths } => paths[src.index() * self.n + dst.index()].len(),
            Table::Hier(t) if src != dst => t.hop_count(src.index(), dst.index()),
            Table::Hier(_) => 0,
            Table::NextHop(_) => {
                let mut hops = 0;
                self.for_each_hop(src, dst, |_| hops += 1);
                hops
            }
        }
    }

    /// Maximum hop count over all pairs (the routed diameter).
    #[must_use]
    pub fn max_hops(&self) -> usize {
        match &self.table {
            Table::Dense { paths } => paths.iter().map(Vec::len).max().unwrap_or(0),
            _ => self
                .pairs()
                .map(|(src, dst)| self.hop_count(src, dst))
                .max()
                .unwrap_or(0),
        }
    }

    /// Mean hop count over all ordered pairs of distinct tiles.
    #[must_use]
    pub fn average_hops(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let total: usize = match &self.table {
            Table::Dense { paths } => paths.iter().map(Vec::len).sum(),
            _ => self
                .pairs()
                .map(|(src, dst)| self.hop_count(src, dst))
                .sum(),
        };
        total as f64 / (self.n * (self.n - 1)) as f64
    }

    /// Physical length of the routed path, in tile units.
    #[must_use]
    pub fn physical_length(&self, topology: &Topology, src: TileId, dst: TileId) -> u32 {
        let mut length = 0;
        self.for_each_hop(src, dst, |hop| {
            length += topology.link_length(hop.channel.link());
        });
        length
    }

    /// `true` if every routed path is hop-minimal (equals the BFS
    /// distance).
    #[must_use]
    pub fn is_hop_minimal(&self, topology: &Topology) -> bool {
        for src in topology.grid().tiles() {
            let dist = topology.bfs_distances(src);
            for dst in topology.grid().tiles() {
                if self.hop_count(src, dst) as u32 != dist[dst.index()] {
                    return false;
                }
            }
        }
        true
    }

    /// `true` if every routed path's physical length equals the Manhattan
    /// distance between its endpoints — the "minimal paths used" column of
    /// Table I (design principle ❹b).
    #[must_use]
    pub fn minimal_paths_used(&self, topology: &Topology) -> bool {
        let grid = topology.grid();
        grid.tiles().all(|src| {
            grid.tiles()
                .all(|dst| self.physical_length(topology, src, dst) == grid.manhattan(src, dst))
        })
    }

    /// Number of routed paths crossing each directed channel. Under
    /// uniform random traffic this is proportional to the expected channel
    /// load; the maximum entry bounds the saturation throughput.
    #[must_use]
    pub fn channel_loads(&self, topology: &Topology) -> Vec<u32> {
        let mut loads = vec![0u32; topology.num_channels()];
        match &self.table {
            Table::Dense { paths } => {
                for path in paths {
                    for hop in path {
                        loads[hop.channel.index()] += 1;
                    }
                }
            }
            _ => {
                for (src, dst) in self.pairs() {
                    self.for_each_hop(src, dst, |hop| loads[hop.channel.index()] += 1);
                }
            }
        }
        loads
    }

    /// Verifies the structural integrity of every path: hops traverse real
    /// channels, consecutive hops connect, the path starts at `src` and
    /// ends at `dst`, and VC classes stay below `num_vc_classes`.
    #[must_use]
    pub fn validate(&self, topology: &Topology) -> bool {
        for src in topology.grid().tiles() {
            for dst in topology.grid().tiles() {
                if src == dst {
                    if let Table::Dense { paths } = &self.table {
                        if !paths[src.index() * self.n + dst.index()].is_empty() {
                            return false;
                        }
                    }
                    continue;
                }
                let mut at = src;
                let mut ok = true;
                self.for_each_hop(src, dst, |hop| {
                    let channel = topology.channel(hop.channel);
                    if channel.from != at
                        || channel.to != hop.to
                        || hop.vc_class >= self.num_vc_classes
                    {
                        ok = false;
                    }
                    at = hop.to;
                });
                if !ok || at != dst {
                    return false;
                }
            }
        }
        true
    }

    /// Builds the channel/VC-class dependency graph induced by all paths
    /// and checks it for cycles. Acyclicity implies the routing cannot
    /// deadlock under wormhole/VC flow control (Dally & Towles).
    #[must_use]
    pub fn is_deadlock_free(&self, topology: &Topology) -> bool {
        let classes = self.num_vc_classes as usize;
        let nodes = topology.num_channels() * classes;
        let key = |c: ChannelId, class: u8| c.index() * classes + class as usize;
        let mut edges: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); nodes];
        for (src, dst) in self.pairs() {
            let mut prev: Option<Hop> = None;
            self.for_each_hop(src, dst, |hop| {
                if let Some(p) = prev {
                    edges[key(p.channel, p.vc_class)].insert(key(hop.channel, hop.vc_class));
                }
                prev = Some(hop);
            });
        }
        // Iterative three-color DFS cycle detection.
        let mut state = vec![0u8; nodes]; // 0 = white, 1 = gray, 2 = black
        for start in 0..nodes {
            if state[start] != 0 {
                continue;
            }
            let mut stack = vec![(start, false)];
            while let Some((node, processed)) = stack.pop() {
                if processed {
                    state[node] = 2;
                    continue;
                }
                if state[node] == 1 {
                    continue;
                }
                state[node] = 1;
                stack.push((node, true));
                for &next in &edges[node] {
                    match state[next] {
                        0 => stack.push((next, false)),
                        1 => return false, // back edge: cycle
                        _ => {}
                    }
                }
            }
        }
        true
    }

    /// A digest of what the table *routes* rather than how it stores it:
    /// equal across the dense and next-hop forms of one algorithm (whose
    /// paths are identical by construction and by the equivalence suite),
    /// different across algorithms. Sweep plans and the cell cache fold
    /// this in, so switching storage forms keeps cache entries warm while
    /// switching algorithms (e.g. to hierarchical) invalidates them.
    #[must_use]
    pub fn semantic_digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |bytes: &[u8]| {
            for &byte in bytes {
                hash = (hash ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
            }
        };
        fold(&[self.algorithm as u8, self.num_vc_classes]);
        fold(&(self.n as u64).to_le_bytes());
        hash
    }

    /// Approximate resident heap bytes of the table storage.
    #[must_use]
    pub fn table_bytes(&self) -> usize {
        match &self.table {
            Table::Dense { paths } => {
                paths.len() * std::mem::size_of::<Vec<Hop>>()
                    + paths
                        .iter()
                        .map(|p| p.capacity() * std::mem::size_of::<Hop>())
                        .sum::<usize>()
            }
            Table::NextHop(t) => t.bytes(),
            Table::Hier(t) => t.bytes(),
        }
    }

    /// All ordered pairs of distinct tiles.
    fn pairs(&self) -> impl Iterator<Item = (TileId, TileId)> + '_ {
        (0..self.n).flat_map(move |s| {
            (0..self.n)
                .filter(move |&d| d != s)
                .map(move |d| (TileId::new(s as u32), TileId::new(d as u32)))
        })
    }
}

/// Builds a deterministic dense (reference-form) routing table for
/// `topology` with `algorithm`. [`RoutingAlgorithm::Hierarchical`] has no
/// dense form and always builds its compact table.
///
/// # Errors
///
/// Returns [`BuildRoutesError`] if the algorithm does not apply to the
/// topology's structure.
pub fn build_routes(
    topology: &Topology,
    algorithm: RoutingAlgorithm,
) -> Result<Routes, BuildRoutesError> {
    build_routes_with(topology, algorithm, RouteForm::Dense)
}

/// Builds a routing table for `topology` with `algorithm`, stored in
/// `form`. [`RouteForm::Hierarchical`] and
/// [`RoutingAlgorithm::Hierarchical`] each force the hierarchical table
/// regardless of the other parameter.
///
/// # Errors
///
/// Returns [`BuildRoutesError`] if the algorithm does not apply to the
/// topology's structure.
pub fn build_routes_with(
    topology: &Topology,
    algorithm: RoutingAlgorithm,
    form: RouteForm,
) -> Result<Routes, BuildRoutesError> {
    if algorithm == RoutingAlgorithm::Hierarchical || form == RouteForm::Hierarchical {
        return hier::build_hierarchical(topology);
    }
    match form {
        RouteForm::Dense => match algorithm {
            RoutingAlgorithm::RowColumn => dense::build_row_column(topology),
            RoutingAlgorithm::RingDateline => dense::build_ring_dateline(topology),
            RoutingAlgorithm::TorusDateline => dense::build_torus_dateline(topology),
            RoutingAlgorithm::ECube => dense::build_ecube(topology),
            RoutingAlgorithm::HopEscalation => dense::build_hop_escalation(topology),
            RoutingAlgorithm::Hierarchical => unreachable!("handled above"),
        },
        RouteForm::NextHop => next_hop::build_next_hop(topology, algorithm),
        RouteForm::Hierarchical => unreachable!("handled above"),
    }
}

/// Builds the default dense routing for the topology's kind.
///
/// # Errors
///
/// Returns [`BuildRoutesError`] if the default algorithm fails, which only
/// happens for custom topologies with exotic structure.
pub fn default_routes(topology: &Topology) -> Result<Routes, BuildRoutesError> {
    build_routes(topology, default_algorithm(topology.kind()))
}

/// Builds the default routing for the topology's kind, stored in `form`.
///
/// Requesting [`RouteForm::NextHop`] on a custom (typically stitched
/// multi-die) topology first tries the [`RoutingAlgorithm::Hierarchical`]
/// table — whose VC class count follows die-internal connectivity instead
/// of growing with network diameter — and falls back to the compact
/// hop-escalation table when the structure does not support it.
///
/// # Errors
///
/// Returns [`BuildRoutesError`] if no applicable algorithm remains.
pub fn default_routes_with(
    topology: &Topology,
    form: RouteForm,
) -> Result<Routes, BuildRoutesError> {
    match form {
        RouteForm::Dense => default_routes(topology),
        RouteForm::Hierarchical => build_routes_with(
            topology,
            RoutingAlgorithm::Hierarchical,
            RouteForm::Hierarchical,
        ),
        RouteForm::NextHop => {
            let algorithm = default_algorithm(topology.kind());
            if algorithm == RoutingAlgorithm::HopEscalation
                && topology.kind() == TopologyKind::Custom
            {
                if let Ok(routes) = build_routes_with(
                    topology,
                    RoutingAlgorithm::Hierarchical,
                    RouteForm::Hierarchical,
                ) {
                    return Ok(routes);
                }
            }
            build_routes_with(topology, algorithm, RouteForm::NextHop)
        }
    }
}

/// Sentinel out-port returned by [`Routes::port_and_class`] on a degraded
/// table when `dst` has no surviving route from `at`. Real ports are
/// positions in a tile's sorted neighbor list and stay well below this
/// (the builders reject radices that would collide).
pub const NO_ROUTE: u8 = u8::MAX;

/// Component id assigned to dead tiles in the component map returned by
/// [`degraded_routes_with_components`].
pub const NO_COMPONENT: u32 = u32::MAX;

/// Builds minimal routes over the surviving subgraph of `topology` after
/// faults: tiles with `alive_tile[t] == false` and directed channels with
/// `alive_channel[c] == false` are excluded. The table keeps the original
/// topology's port numbering (so a simulator mid-run can swap tables
/// without renumbering anything) and uses hop-escalation VC classes
/// clamped into `num_vc_classes` classes — pass the class count of the
/// table being replaced so the VC partition stays fixed across fault
/// epochs. Post-fault escalation-clamped routing is deterministic but not
/// provably deadlock-free; simulations bound runtime with their drain
/// limit.
///
/// Masks must be direction-symmetric (killing a link kills both directed
/// channels; killing a router kills all incident channels).
///
/// # Errors
///
/// Returns [`BuildRoutesError::Disconnected`] when the mask partitions
/// the surviving tiles. Use [`degraded_routes_with_components`] to route
/// *through* a partition instead (unreachable pairs answer
/// [`NO_ROUTE`]).
pub fn degraded_routes(
    topology: &Topology,
    alive_tile: &[bool],
    alive_channel: &[bool],
    num_vc_classes: u8,
) -> Result<Routes, BuildRoutesError> {
    let (routes, components) =
        degraded_routes_with_components(topology, alive_tile, alive_channel, num_vc_classes);
    let mut first: Option<(usize, u32)> = None;
    for (tile, &comp) in components.iter().enumerate() {
        if comp == NO_COMPONENT {
            continue;
        }
        match first {
            None => first = Some((tile, comp)),
            Some((witness, root)) if comp != root => {
                return Err(BuildRoutesError::Disconnected {
                    reason: format!(
                        "fault mask partitions the surviving network \
                         (tiles {witness} and {tile} are in different components)"
                    ),
                });
            }
            Some(_) => {}
        }
    }
    Ok(routes)
}

/// The lenient form of [`degraded_routes`]: always succeeds, returning
/// the degraded table plus one component id per tile (dead tiles get
/// [`NO_COMPONENT`]). Pairs in different components have no route —
/// [`Routes::port_and_class`] answers [`NO_ROUTE`] for them — so callers
/// gate traffic by comparing component ids instead of failing outright.
#[must_use]
pub fn degraded_routes_with_components(
    topology: &Topology,
    alive_tile: &[bool],
    alive_channel: &[bool],
    num_vc_classes: u8,
) -> (Routes, Vec<u32>) {
    next_hop::build_degraded(topology, alive_tile, alive_channel, num_vc_classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::grid::Grid;

    fn all_checks(topology: &Topology, routes: &Routes) {
        assert!(routes.validate(topology), "{topology}: invalid paths");
        assert!(
            routes.is_hop_minimal(topology),
            "{topology}: paths are not hop-minimal"
        );
        assert!(
            routes.is_deadlock_free(topology),
            "{topology}: channel dependency cycle"
        );
    }

    #[test]
    fn mesh_row_column_is_xy() {
        let grid = Grid::new(4, 4);
        let mesh = generators::mesh(grid);
        let routes = build_routes(&mesh, RoutingAlgorithm::RowColumn).expect("mesh");
        all_checks(&mesh, &routes);
        assert!(routes.minimal_paths_used(&mesh), "XY on mesh is minimal");
    }

    #[test]
    fn sparse_hamming_routes() {
        let grid = Grid::new(8, 8);
        let sr = [4].into_iter().collect();
        let sc = [2, 5].into_iter().collect();
        let shg = generators::row_column_skip(grid, &sr, &sc).expect("valid");
        let routes = build_routes(&shg, RoutingAlgorithm::RowColumn).expect("shg");
        all_checks(&shg, &routes);
    }

    #[test]
    fn flattened_butterfly_routes_use_minimal_paths() {
        let grid = Grid::new(8, 8);
        let fb = generators::flattened_butterfly(grid);
        let routes = build_routes(&fb, RoutingAlgorithm::RowColumn).expect("fb");
        all_checks(&fb, &routes);
        // Table I: minimal paths used ✓ for the flattened butterfly.
        assert!(routes.minimal_paths_used(&fb));
        assert_eq!(routes.max_hops(), 2);
    }

    #[test]
    fn ring_routes() {
        let grid = Grid::new(4, 4);
        let ring = generators::ring(grid);
        let routes = build_routes(&ring, RoutingAlgorithm::RingDateline).expect("ring");
        all_checks(&ring, &routes);
        assert_eq!(routes.max_hops(), 8); // R·C/2
        assert!(!routes.minimal_paths_used(&ring));
    }

    #[test]
    fn torus_routes() {
        let grid = Grid::new(4, 4);
        let torus = generators::torus(grid);
        let routes = build_routes(&torus, RoutingAlgorithm::TorusDateline).expect("torus");
        all_checks(&torus, &routes);
        assert_eq!(routes.max_hops(), 4); // R/2 + C/2
                                          // Table I: torus min-hop routing does not use physically minimal
                                          // paths (wrap links are physically long).
        assert!(!routes.minimal_paths_used(&torus));
    }

    #[test]
    fn folded_torus_routes() {
        let grid = Grid::new(8, 8);
        let ft = generators::folded_torus(grid);
        let routes = build_routes(&ft, RoutingAlgorithm::TorusDateline).expect("folded");
        all_checks(&ft, &routes);
        assert_eq!(routes.max_hops(), 8);
    }

    #[test]
    fn hypercube_routes() {
        let grid = Grid::new(8, 8);
        let hc = generators::hypercube(grid).expect("8x8");
        let routes = build_routes(&hc, RoutingAlgorithm::ECube).expect("ecube");
        all_checks(&hc, &routes);
        assert_eq!(routes.max_hops(), 6); // log2(64)
    }

    #[test]
    fn slimnoc_routes() {
        let grid = Grid::new(16, 8);
        let slim = generators::slim_noc(grid).expect("128 tiles");
        let routes = build_routes(&slim, RoutingAlgorithm::HopEscalation).expect("slim");
        all_checks(&slim, &routes);
        assert_eq!(routes.max_hops(), 2);
        assert_eq!(routes.num_vc_classes(), 2);
    }

    #[test]
    fn default_algorithms_cover_all_kinds() {
        let grid = Grid::new(8, 8);
        for topology in [
            generators::ring(grid),
            generators::mesh(grid),
            generators::torus(grid),
            generators::folded_torus(grid),
            generators::hypercube(grid).expect("8x8"),
            generators::flattened_butterfly(grid),
        ] {
            let routes = default_routes(&topology).expect("default routing");
            all_checks(&topology, &routes);
        }
    }

    #[test]
    fn channel_loads_sum_to_total_hops() {
        let grid = Grid::new(4, 4);
        let mesh = generators::mesh(grid);
        let routes = default_routes(&mesh).expect("mesh");
        let loads = routes.channel_loads(&mesh);
        let total: u32 = loads.iter().sum();
        let hops: usize = grid
            .tiles()
            .flat_map(|a| grid.tiles().map(move |b| (a, b)))
            .map(|(a, b)| routes.hop_count(a, b))
            .sum();
        assert_eq!(total as usize, hops);
    }

    #[test]
    fn average_hops_matches_metric() {
        let grid = Grid::new(6, 6);
        let mesh = generators::mesh(grid);
        let routes = default_routes(&mesh).expect("mesh");
        let metric = crate::metrics::average_hops(&mesh);
        assert!((routes.average_hops() - metric).abs() < 1e-9);
    }

    fn full_liveness(topology: &Topology) -> (Vec<bool>, Vec<bool>) {
        (
            vec![true; topology.num_tiles()],
            vec![true; topology.num_channels()],
        )
    }

    fn kill_link(topology: &Topology, channels: &mut [bool], a: u32, b: u32) {
        let want = crate::topology::Link::new(TileId::new(a), TileId::new(b));
        let link = topology
            .links()
            .iter()
            .position(|&l| l == want)
            .expect("link exists");
        channels[link * 2] = false;
        channels[link * 2 + 1] = false;
    }

    #[test]
    fn degraded_full_mask_matches_hop_escalation_paths() {
        let grid = Grid::new(4, 4);
        let mesh = generators::mesh(grid);
        let reference =
            build_routes_with(&mesh, RoutingAlgorithm::HopEscalation, RouteForm::NextHop)
                .expect("mesh");
        let (tiles, channels) = full_liveness(&mesh);
        let degraded = degraded_routes(&mesh, &tiles, &channels, reference.num_vc_classes())
            .expect("fully-alive mask is connected");
        assert_eq!(degraded.num_vc_classes(), reference.num_vc_classes());
        for src in grid.tiles() {
            for dst in grid.tiles() {
                assert_eq!(
                    degraded.path_vec(src, dst),
                    reference.path_vec(src, dst),
                    "{src} → {dst}"
                );
            }
        }
    }

    #[test]
    fn degraded_routes_avoid_a_dead_link() {
        let grid = Grid::new(4, 4);
        let mesh = generators::mesh(grid);
        let (tiles, mut channels) = full_liveness(&mesh);
        // Kill the 0 ↔ 1 link; tile 0 keeps its 0 ↔ 4 link.
        kill_link(&mesh, &mut channels, 0, 1);
        let routes = degraded_routes(&mesh, &tiles, &channels, 4).expect("mesh minus one link");
        let dead: Vec<ChannelId> = mesh
            .channels()
            .filter(|c| !channels[c.id.index()])
            .map(|c| c.id)
            .collect();
        for src in grid.tiles() {
            for dst in grid.tiles() {
                let mut at = src;
                routes.for_each_hop(src, dst, |hop| {
                    assert!(
                        !dead.contains(&hop.channel),
                        "{src} → {dst} uses a dead link"
                    );
                    at = hop.to;
                });
                assert_eq!(at, dst, "{src} → {dst} terminates");
            }
        }
        // The detour costs exactly one extra hop pair.
        assert_eq!(routes.hop_count(TileId::new(0), TileId::new(1)), 3);
    }

    #[test]
    fn degraded_dead_router_sinks_all_its_pairs() {
        let grid = Grid::new(4, 4);
        let mesh = generators::mesh(grid);
        let (mut tiles, mut channels) = full_liveness(&mesh);
        // Kill router 5 and all its incident channels (the symmetric mask
        // the simulator builds).
        tiles[5] = false;
        for &(n, _) in mesh.neighbors(TileId::new(5)) {
            kill_link(&mesh, &mut channels, 5, n.index() as u32);
        }
        let (routes, components) = degraded_routes_with_components(&mesh, &tiles, &channels, 4);
        assert_eq!(components[5], NO_COMPONENT);
        assert!(components
            .iter()
            .enumerate()
            .all(|(t, &c)| t == 5 || c == 0));
        // No surviving route to or from the dead router.
        let (port, _) = routes.port_and_class(TileId::new(0), TileId::new(0), TileId::new(5), 0);
        assert_eq!(port, NO_ROUTE);
        // Every surviving pair still routes.
        for src in grid.tiles().filter(|s| s.index() != 5) {
            for dst in grid.tiles().filter(|d| d.index() != 5 && *d != src) {
                let (port, _) = routes.port_and_class(src, src, dst, 0);
                assert_ne!(port, NO_ROUTE, "{src} → {dst}");
            }
        }
    }

    #[test]
    fn degraded_partition_is_a_typed_error() {
        let grid = Grid::new(1, 4);
        let path = Topology::new(
            grid,
            TopologyKind::Custom,
            (0..3).map(|i| crate::topology::Link::new(TileId::new(i), TileId::new(i + 1))),
        );
        let (tiles, mut channels) = full_liveness(&path);
        kill_link(&path, &mut channels, 1, 2);
        let err = degraded_routes(&path, &tiles, &channels, 1).expect_err("partitioned");
        assert!(matches!(err, BuildRoutesError::Disconnected { .. }));
        assert!(err.to_string().contains("disconnected"));
        let (routes, components) = degraded_routes_with_components(&path, &tiles, &channels, 1);
        assert_eq!(components, vec![0, 0, 1, 1]);
        let (port, _) = routes.port_and_class(TileId::new(1), TileId::new(1), TileId::new(2), 0);
        assert_eq!(port, NO_ROUTE);
        let (port, _) = routes.port_and_class(TileId::new(0), TileId::new(0), TileId::new(1), 0);
        assert_ne!(port, NO_ROUTE);
    }

    #[test]
    fn next_hop_form_reports_itself() {
        let grid = Grid::new(4, 4);
        let mesh = generators::mesh(grid);
        let dense = build_routes(&mesh, RoutingAlgorithm::RowColumn).expect("mesh");
        let compact = build_routes_with(&mesh, RoutingAlgorithm::RowColumn, RouteForm::NextHop)
            .expect("mesh");
        assert_eq!(dense.form(), RouteForm::Dense);
        assert_eq!(compact.form(), RouteForm::NextHop);
        assert_eq!(dense.semantic_digest(), compact.semantic_digest());
        assert!(compact.table_bytes() < dense.table_bytes());
        all_checks(&mesh, &compact);
    }
}
