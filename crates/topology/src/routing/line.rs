//! Shared 1D (single row / single column) routing machinery: hop-minimal
//! move lists with bounded direction reversals, and the all-pairs "line
//! bank" the compact table forms store instead of materialized paths.

use crate::topology::Topology;

/// Maximum direction reversals a 1D phase may take; each reversal
/// escalates the VC class, which keeps the per-phase channel dependency
/// graph acyclic.
pub(super) const MAX_REVERSALS: u8 = 2;
/// VC classes one 1D phase consumes (`reversals ∈ 0..=MAX_REVERSALS`).
pub(super) const CLASSES_PER_PHASE: u8 = MAX_REVERSALS + 1;

/// A 1D move along a row or column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) struct Move1D {
    pub(super) to_pos: u16,
    pub(super) reversals: u8,
}

/// Hop-minimal 1D paths with at most [`MAX_REVERSALS`] direction changes,
/// computed by Dijkstra over `(position, direction)` states with
/// lexicographic `(hops, reversals)` cost.
pub(super) fn min_1d_paths(adjacency: &[Vec<u16>], from: u16) -> Vec<Option<Vec<Move1D>>> {
    let n = adjacency.len();
    // State: (pos, dir) with dir: 0 = none yet, 1 = increasing, 2 = decreasing.
    let state = |pos: u16, dir: u8| pos as usize * 3 + dir as usize;
    let mut best = vec![(u32::MAX, u8::MAX); n * 3];
    let mut parent: Vec<Option<(u16, u8)>> = vec![None; n * 3];
    let mut heap = std::collections::BinaryHeap::new();
    best[state(from, 0)] = (0, 0);
    heap.push(std::cmp::Reverse((0u32, 0u8, from, 0u8)));
    while let Some(std::cmp::Reverse((hops, revs, pos, dir))) = heap.pop() {
        if (hops, revs) > best[state(pos, dir)] {
            continue;
        }
        for &next in &adjacency[pos as usize] {
            let ndir = if next > pos { 1 } else { 2 };
            let nrevs = if dir != 0 && ndir != dir {
                revs + 1
            } else {
                revs
            };
            if nrevs > MAX_REVERSALS {
                continue;
            }
            let cost = (hops + 1, nrevs);
            if cost < best[state(next, ndir)] {
                best[state(next, ndir)] = cost;
                parent[state(next, ndir)] = Some((pos, dir));
                heap.push(std::cmp::Reverse((hops + 1, nrevs, next, ndir)));
            }
        }
    }
    (0..n as u16)
        .map(|target| {
            if target == from {
                return Some(Vec::new());
            }
            // Best terminal state for this target.
            let (dir, &(hops, _)) = [1u8, 2u8]
                .iter()
                .map(|&d| (d, &best[state(target, d)]))
                .min_by_key(|&(_, cost)| *cost)?;
            if hops == u32::MAX {
                return None;
            }
            // Walk parents back to the source.
            let mut moves = Vec::new();
            let (mut pos, mut d) = (target, dir);
            while pos != from || d != 0 {
                let (ppos, pdir) = parent[state(pos, d)]?;
                // Reversal count at this state, relative to the parent.
                let revs_here = best[state(pos, d)].1;
                moves.push(Move1D {
                    to_pos: pos,
                    reversals: revs_here,
                });
                pos = ppos;
                d = pdir;
            }
            moves.reverse();
            Some(moves)
        })
        .collect()
}

/// All-pairs 1D move lists of one line (one row or one column),
/// flattened into a single arena: `positions²` `(offset, len)` slots
/// over one `Vec<Move1D>`. The compact table forms index these banks at
/// query time instead of materializing per-pair paths; the moves are
/// exactly what [`min_1d_paths`] produces, so a path reassembled from a
/// bank is identical to the dense builder's.
#[derive(Debug, Clone, PartialEq)]
pub(super) struct LineBank {
    positions: usize,
    offsets: Vec<u32>,
    /// `u16::MAX` marks an unreachable pair.
    lens: Vec<u16>,
    moves: Vec<Move1D>,
    /// Maximum reversal count over every stored move.
    pub(super) max_reversals: u8,
}

const UNREACHABLE: u16 = u16::MAX;

impl LineBank {
    /// Builds the bank from the line's 1D adjacency (one [`min_1d_paths`]
    /// sweep per source position).
    pub(super) fn build(adjacency: &[Vec<u16>]) -> Self {
        let positions = adjacency.len();
        let mut offsets = vec![0u32; positions * positions];
        let mut lens = vec![UNREACHABLE; positions * positions];
        let mut moves = Vec::new();
        let mut max_reversals = 0u8;
        for from in 0..positions as u16 {
            let paths = min_1d_paths(adjacency, from);
            for (to, path) in paths.iter().enumerate() {
                let slot = from as usize * positions + to;
                if let Some(path) = path {
                    offsets[slot] = u32::try_from(moves.len()).expect("bank arena fits u32");
                    lens[slot] = u16::try_from(path.len()).expect("1D path fits u16");
                    for mv in path {
                        max_reversals = max_reversals.max(mv.reversals);
                        moves.push(*mv);
                    }
                }
            }
        }
        Self {
            positions,
            offsets,
            lens,
            moves,
            max_reversals,
        }
    }

    /// The move list from `from` to `to`, or `None` when the line cannot
    /// connect them (within the reversal bound).
    pub(super) fn list(&self, from: u16, to: u16) -> Option<&[Move1D]> {
        let slot = from as usize * self.positions + to as usize;
        let len = self.lens[slot];
        if len == UNREACHABLE {
            return None;
        }
        let offset = self.offsets[slot] as usize;
        Some(&self.moves[offset..offset + len as usize])
    }

    /// `true` when every ordered pair of positions is connected.
    pub(super) fn fully_connected(&self) -> bool {
        self.lens.iter().all(|&len| len != UNREACHABLE)
    }

    /// Approximate resident heap bytes.
    pub(super) fn bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.lens.len() * std::mem::size_of::<u16>()
            + self.moves.len() * std::mem::size_of::<Move1D>()
    }
}

/// One line's adjacency: per position, the positions it links to.
pub(super) type LineAdjacency = Vec<Vec<Vec<u16>>>;

/// Per-row and per-column 1D adjacency lists (positions are columns for
/// rows, rows for columns), extracted from the topology's link set.
///
/// # Errors
///
/// Returns the offending link rendered as a string when any link is not
/// row/column aligned (the row/column decompositions only apply then).
pub(super) fn row_col_adjacency(
    topology: &Topology,
) -> Result<(LineAdjacency, LineAdjacency), String> {
    let grid = topology.grid();
    let (rows, cols) = (grid.rows(), grid.cols());
    let mut row_adj: Vec<Vec<Vec<u16>>> = vec![vec![Vec::new(); cols as usize]; rows as usize];
    let mut col_adj: Vec<Vec<Vec<u16>>> = vec![vec![Vec::new(); rows as usize]; cols as usize];
    for link in topology.links() {
        let (ca, cb) = (grid.coord(link.a), grid.coord(link.b));
        if ca.same_row(cb) {
            row_adj[ca.row as usize][ca.col as usize].push(cb.col);
            row_adj[ca.row as usize][cb.col as usize].push(ca.col);
        } else if ca.same_col(cb) {
            col_adj[ca.col as usize][ca.row as usize].push(cb.row);
            col_adj[ca.col as usize][cb.row as usize].push(ca.row);
        } else {
            return Err(format!("link {ca} ↔ {cb} is not row/column aligned"));
        }
    }
    Ok((row_adj, col_adj))
}
