//! Hierarchical routing tables for multi-die topologies.
//!
//! Multi-die networks stitched from a [`TopologyDb`] spec are not
//! globally row/column complete: seam links only exist on a subset of
//! rows, so the flat row-column decomposition (`RowColumn`) rejects
//! them, and the dense per-pair fallback (`HopEscalation`) needs a VC
//! class per hop — more classes than VCs on anything big. This form
//! routes in at most three 1D phases instead:
//!
//! 1. **column** — ride the source column to the nearest *through row*,
//! 2. **through row** — a row whose 1D line connects every column pair
//!    (seam rows qualify: seam links are row-aligned), cross to the
//!    destination column,
//! 3. **column** — ride the destination column to the destination row.
//!
//! Pairs whose source row already connects their columns skip phase 1
//! and use their own row. Every phase is a hop-minimal bounded-reversal
//! 1D walk from a [`LineBank`]; VC classes are banked per phase
//! (`A₁ | B | A₃` consecutive class ranges), so classes escalate
//! strictly across phases and by reversal count within one. Phases use
//! disjoint channel sets per line and classes never decrease along any
//! path, which keeps the channel × class dependency graph acyclic — the
//! equivalence suite additionally checks `is_deadlock_free` on sampled
//! databases. Class count is `A₁ + B + A₃` where each term is 1 + the
//! worst reversal count actually stored for that phase — bounded by the
//! dies' internal connectivity, not by network diameter.
//!
//! [`TopologyDb`]: crate::db::TopologyDb

use crate::topology::Topology;

use super::line::{row_col_adjacency, LineBank};
use super::next_hop::Csr;
use super::{BuildRoutesError, Hop, Routes, RoutingAlgorithm, Table};
use crate::grid::TileId;
use crate::topology::ChannelId;

/// A hierarchical three-phase routing table (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub(super) struct HierTable {
    csr: Csr,
    cols: u16,
    row_banks: Vec<LineBank>,
    col_banks: Vec<LineBank>,
    /// Nearest through row of each row (ties break toward lower rows).
    through: Vec<u16>,
    /// First VC class of the through-row phase (phase 1 starts at 0).
    p2_base: u8,
    /// First VC class of the destination-column phase.
    p3_base: u8,
}

impl HierTable {
    /// `(out port, VC class)` at tile `at` for a `src → dst` flit on its
    /// `hop`-th hop. O(1) apart from the CSR port lookup.
    pub(super) fn port_and_class(&self, at: usize, src: usize, dst: usize, hop: usize) -> (u8, u8) {
        let (next, class) = self.step(src, dst, hop);
        let port = self.csr.port_of(at, next as u32);
        (u8::try_from(port).expect("radix fits u8"), class)
    }

    /// The full [`Hop`] of the same query.
    pub(super) fn hop_at(&self, at: usize, src: usize, dst: usize, hop: usize) -> Hop {
        let (port, vc_class) = self.port_and_class(at, src, dst, hop);
        let (to, channel) = self.csr.entry(at, u32::from(port));
        Hop {
            channel: ChannelId::new(channel),
            to: TileId::new(to),
            vc_class,
        }
    }

    /// Path length of `src → dst` in O(1) (sums 2–3 list lengths).
    pub(super) fn hop_count(&self, src: usize, dst: usize) -> usize {
        let cols = self.cols as usize;
        let (sr, sc) = (src / cols, src % cols);
        let (dr, dc) = (dst / cols, dst % cols);
        match self.row_banks[sr].list(sc as u16, dc as u16) {
            Some(row) => row.len() + self.col_list_len(dc, sr, dr),
            None => {
                let g = self.through[sr];
                self.col_list_len(sc, sr, g as usize)
                    + self.row_banks[g as usize]
                        .list(sc as u16, dc as u16)
                        .expect("through row connects every column pair")
                        .len()
                    + self.col_list_len(dc, g as usize, dr)
            }
        }
    }

    fn col_list_len(&self, col: usize, from_row: usize, to_row: usize) -> usize {
        self.col_banks[col]
            .list(from_row as u16, to_row as u16)
            .expect("columns are fully connected")
            .len()
    }

    /// `(next tile, VC class)` of the `hop`-th hop of `src → dst`.
    fn step(&self, src: usize, dst: usize, hop: usize) -> (usize, u8) {
        let cols = self.cols as usize;
        let (sr, sc) = (src / cols, src % cols);
        let (dr, dc) = (dst / cols, dst % cols);
        if let Some(row) = self.row_banks[sr].list(sc as u16, dc as u16) {
            // Two phases: own row, then destination column.
            if hop < row.len() {
                let mv = row[hop];
                return (sr * cols + mv.to_pos as usize, self.p2_base + mv.reversals);
            }
            let col = self.col_banks[dc]
                .list(sr as u16, dr as u16)
                .expect("columns are fully connected");
            let mv = col[hop - row.len()];
            return (mv.to_pos as usize * cols + dc, self.p3_base + mv.reversals);
        }
        // Three phases via the nearest through row.
        let g = self.through[sr] as usize;
        let up = self.col_banks[sc]
            .list(sr as u16, g as u16)
            .expect("columns are fully connected");
        if hop < up.len() {
            let mv = up[hop];
            return (mv.to_pos as usize * cols + sc, mv.reversals);
        }
        let row = self.row_banks[g]
            .list(sc as u16, dc as u16)
            .expect("through row connects every column pair");
        let k = hop - up.len();
        if k < row.len() {
            let mv = row[k];
            return (g * cols + mv.to_pos as usize, self.p2_base + mv.reversals);
        }
        let down = self.col_banks[dc]
            .list(g as u16, dr as u16)
            .expect("columns are fully connected");
        let mv = down[k - row.len()];
        (mv.to_pos as usize * cols + dc, self.p3_base + mv.reversals)
    }

    /// Approximate resident heap bytes.
    pub(super) fn bytes(&self) -> usize {
        self.csr.bytes()
            + self
                .row_banks
                .iter()
                .chain(self.col_banks.iter())
                .map(LineBank::bytes)
                .sum::<usize>()
            + self.through.len() * 2
    }
}

/// Builds the hierarchical table, or [`BuildRoutesError::NotApplicable`]
/// when the topology has a non-axis-aligned link, a disconnected
/// column, or (while some row is incomplete) no through row at all.
pub(super) fn build_hierarchical(topology: &Topology) -> Result<Routes, BuildRoutesError> {
    let not_applicable = |reason: String| BuildRoutesError::NotApplicable {
        algorithm: RoutingAlgorithm::Hierarchical,
        reason,
    };
    let grid = topology.grid();
    let (row_adj, col_adj) = row_col_adjacency(topology).map_err(&not_applicable)?;
    let row_banks: Vec<LineBank> = row_adj.iter().map(|adj| LineBank::build(adj)).collect();
    let col_banks: Vec<LineBank> = col_adj.iter().map(|adj| LineBank::build(adj)).collect();
    if let Some(c) = col_banks.iter().position(|b| !b.fully_connected()) {
        return Err(not_applicable(format!(
            "column {c} is disconnected between some rows"
        )));
    }
    let through_rows: Vec<u16> = (0..grid.rows())
        .filter(|&r| row_banks[r as usize].fully_connected())
        .collect();
    if through_rows.is_empty() {
        return Err(not_applicable(
            "no row connects every column pair".to_owned(),
        ));
    }
    // Nearest through row per row; scanning the smaller distance (and
    // the lower row at equal distance) first makes ties deterministic.
    let through: Vec<u16> = (0..grid.rows())
        .map(|r| {
            (0..grid.rows())
                .flat_map(|d| {
                    r.checked_sub(d)
                        .into_iter()
                        .chain((d > 0 && r + d < grid.rows()).then_some(r + d))
                })
                .find(|&t| row_banks[t as usize].fully_connected())
                .expect("at least one through row exists")
        })
        .collect();
    // Class bank widths. Phase 1 only carries (row → its through row)
    // column rides, so its width reflects only those lists; phases 2/3
    // use whole-bank worst cases.
    let mut p1_classes = 0u8;
    for r in 0..grid.rows() {
        if row_banks[r as usize].fully_connected() {
            continue;
        }
        for c in 0..grid.cols() {
            let max_rev = col_banks[c as usize]
                .list(r, through[r as usize])
                .expect("columns are fully connected")
                .iter()
                .map(|mv| mv.reversals)
                .max()
                .unwrap_or(0);
            p1_classes = p1_classes.max(max_rev + 1);
        }
    }
    let p2_classes = 1 + row_banks.iter().map(|b| b.max_reversals).max().unwrap_or(0);
    let p3_classes = 1 + col_banks.iter().map(|b| b.max_reversals).max().unwrap_or(0);
    let num_vc_classes = p1_classes + p2_classes + p3_classes;
    Ok(Routes {
        n: topology.num_tiles(),
        algorithm: RoutingAlgorithm::Hierarchical,
        num_vc_classes,
        table: Table::Hier(HierTable {
            csr: Csr::build(topology),
            cols: grid.cols(),
            row_banks,
            col_banks,
            through,
            p2_base: p1_classes,
            p3_base: p1_classes + p2_classes,
        }),
    })
}
