//! The dense reference form: every path materialized as `Vec<Hop>`.
//!
//! These builders are the semantic ground truth — the compact forms in
//! [`super::next_hop`] must reconstruct bit-identical paths, which the
//! equivalence suite enforces. Dense tables cost O(n² · hops) memory
//! (multi-GB at 10k tiles), so they are kept as the cross-checkable
//! reference, not the default.

use crate::generators;
use crate::grid::{TileCoord, TileId};
use crate::topology::{Topology, TopologyKind};

use super::line::{min_1d_paths, CLASSES_PER_PHASE, MAX_REVERSALS};
use super::next_hop::hop_escalation_table;
use super::{BuildRoutesError, Hop, Routes, RoutingAlgorithm, Table};

// ---------------------------------------------------------------------------
// Row-column routing (mesh, sparse Hamming, flattened butterfly, Ruche).
// ---------------------------------------------------------------------------

pub(super) fn build_row_column(topology: &Topology) -> Result<Routes, BuildRoutesError> {
    let grid = topology.grid();
    let (rows, cols) = (grid.rows(), grid.cols());
    let not_applicable = |reason: String| BuildRoutesError::NotApplicable {
        algorithm: RoutingAlgorithm::RowColumn,
        reason,
    };
    // 1D adjacency per row (positions = columns) and per column.
    let mut row_adj: Vec<Vec<Vec<u16>>> = vec![vec![Vec::new(); cols as usize]; rows as usize];
    let mut col_adj: Vec<Vec<Vec<u16>>> = vec![vec![Vec::new(); rows as usize]; cols as usize];
    for link in topology.links() {
        let (ca, cb) = (grid.coord(link.a), grid.coord(link.b));
        if ca.same_row(cb) {
            row_adj[ca.row as usize][ca.col as usize].push(cb.col);
            row_adj[ca.row as usize][cb.col as usize].push(ca.col);
        } else if ca.same_col(cb) {
            col_adj[ca.col as usize][ca.row as usize].push(cb.row);
            col_adj[ca.col as usize][cb.row as usize].push(ca.row);
        } else {
            return Err(not_applicable(format!(
                "link {ca} ↔ {cb} is not row/column aligned"
            )));
        }
    }
    let n = topology.num_tiles();
    let mut paths = vec![Vec::new(); n * n];
    for src_coord in grid.coords() {
        let src = grid.id(src_coord);
        // Row phase paths from the source column within the source row.
        let row_paths = min_1d_paths(&row_adj[src_coord.row as usize], src_coord.col);
        for dst_col in 0..cols {
            let Some(row_moves) = &row_paths[dst_col as usize] else {
                return Err(not_applicable(format!(
                    "row {} disconnected between columns {} and {dst_col}",
                    src_coord.row, src_coord.col
                )));
            };
            // Column phase within the destination column.
            let col_paths = min_1d_paths(&col_adj[dst_col as usize], src_coord.row);
            for dst_row in 0..rows {
                let dst = grid.id(TileCoord::new(dst_row, dst_col));
                if dst == src {
                    continue;
                }
                let Some(col_moves) = &col_paths[dst_row as usize] else {
                    return Err(not_applicable(format!(
                        "column {dst_col} disconnected between rows {} and {dst_row}",
                        src_coord.row
                    )));
                };
                let mut hops = Vec::with_capacity(row_moves.len() + col_moves.len());
                let mut at = src;
                for mv in row_moves {
                    let next = grid.id(TileCoord::new(src_coord.row, mv.to_pos));
                    hops.push(make_hop(
                        topology,
                        at,
                        next,
                        mv.reversals.min(MAX_REVERSALS),
                    ));
                    at = next;
                }
                for mv in col_moves {
                    let next = grid.id(TileCoord::new(mv.to_pos, dst_col));
                    hops.push(make_hop(
                        topology,
                        at,
                        next,
                        CLASSES_PER_PHASE + mv.reversals.min(MAX_REVERSALS),
                    ));
                    at = next;
                }
                paths[src.index() * n + dst.index()] = hops;
            }
        }
    }
    Ok(Routes {
        n,
        algorithm: RoutingAlgorithm::RowColumn,
        num_vc_classes: CLASSES_PER_PHASE * 2,
        table: Table::Dense { paths },
    })
}

pub(super) fn make_hop(topology: &Topology, from: TileId, to: TileId, vc_class: u8) -> Hop {
    let (_, link) = topology
        .neighbors(from)
        .iter()
        .find(|&&(n, _)| n == to)
        .copied()
        .unwrap_or_else(|| panic!("no link {from} → {to}"));
    let channel = topology.channel_from(from, link);
    Hop {
        channel: channel.id,
        to,
        vc_class,
    }
}

// ---------------------------------------------------------------------------
// Ring routing with a dateline.
// ---------------------------------------------------------------------------

pub(super) fn build_ring_dateline(topology: &Topology) -> Result<Routes, BuildRoutesError> {
    let grid = topology.grid();
    let order =
        generators::cycle_order_of(topology).ok_or_else(|| BuildRoutesError::NotApplicable {
            algorithm: RoutingAlgorithm::RingDateline,
            reason: "topology is not a single cycle".to_owned(),
        })?;
    let n = topology.num_tiles();
    // position of each tile along the cycle
    let mut pos = vec![0usize; n];
    for (i, &coord) in order.iter().enumerate() {
        pos[grid.id(coord).index()] = i;
    }
    let mut paths = vec![Vec::new(); n * n];
    for src in grid.tiles() {
        for dst in grid.tiles() {
            if src == dst {
                continue;
            }
            let (ps, pd) = (pos[src.index()], pos[dst.index()]);
            let forward = (pd + n - ps) % n;
            let backward = n - forward;
            let step: isize = if forward <= backward { 1 } else { -1 };
            let mut hops = Vec::new();
            let mut at = src;
            let mut p = ps as isize;
            let mut class = 0u8;
            while at != dst {
                let np = (p + step).rem_euclid(n as isize) as usize;
                // Crossing the dateline (cycle position 0 boundary) bumps
                // the VC class.
                if (step == 1 && np == 0) || (step == -1 && p == 0) {
                    class = 1;
                }
                let next = grid.id(order[np]);
                hops.push(make_hop(topology, at, next, class));
                at = next;
                p = np as isize;
            }
            paths[src.index() * n + dst.index()] = hops;
        }
    }
    Ok(Routes {
        n,
        algorithm: RoutingAlgorithm::RingDateline,
        num_vc_classes: 2,
        table: Table::Dense { paths },
    })
}

// ---------------------------------------------------------------------------
// Torus routing: dimension order over row/column cycles with datelines.
// ---------------------------------------------------------------------------

pub(super) fn build_torus_dateline(topology: &Topology) -> Result<Routes, BuildRoutesError> {
    let grid = topology.grid();
    let (rows, cols) = (grid.rows() as usize, grid.cols() as usize);
    // The cycle order of each row/column in *physical positions*: natural
    // order for the torus, interleaved order for the folded torus.
    let (row_cycle, col_cycle): (Vec<u16>, Vec<u16>) =
        if topology.kind() == TopologyKind::FoldedTorus {
            (
                generators::folded_cycle_order(grid.cols()),
                generators::folded_cycle_order(grid.rows()),
            )
        } else {
            ((0..grid.cols()).collect(), (0..grid.rows()).collect())
        };
    // Logical index of each physical position along its cycle.
    let invert = |cycle: &[u16]| {
        let mut inv = vec![0usize; cycle.len()];
        for (logical, &phys) in cycle.iter().enumerate() {
            inv[phys as usize] = logical;
        }
        inv
    };
    let row_logical = invert(&row_cycle);
    let col_logical = invert(&col_cycle);
    let n = topology.num_tiles();
    let mut paths = vec![Vec::new(); n * n];
    // Route along a 1D cycle from logical position a to b, shorter way,
    // bumping the class when wrapping past logical 0.
    let route_cycle = |a: usize, b: usize, len: usize| -> Vec<(usize, bool)> {
        if len <= 1 || a == b {
            return Vec::new();
        }
        let forward = (b + len - a) % len;
        let backward = len - forward;
        let step_fwd = forward <= backward;
        let mut moves = Vec::new();
        let mut p = a;
        while p != b {
            let np = if step_fwd {
                (p + 1) % len
            } else {
                (p + len - 1) % len
            };
            let crossed = (step_fwd && np == 0) || (!step_fwd && p == 0);
            moves.push((np, crossed));
            p = np;
        }
        moves
    };
    for src_coord in grid.coords() {
        let src = grid.id(src_coord);
        for dst_coord in grid.coords() {
            let dst = grid.id(dst_coord);
            if src == dst {
                continue;
            }
            let mut hops = Vec::new();
            let mut at = src;
            let mut class = 0u8;
            // Row dimension first (move along the row cycle).
            let a = row_logical[src_coord.col as usize];
            let b = row_logical[dst_coord.col as usize];
            for (logical, crossed) in route_cycle(a, b, cols) {
                if crossed {
                    class = 1;
                }
                let next = grid.id(TileCoord::new(src_coord.row, row_cycle[logical]));
                hops.push(make_hop(topology, at, next, class));
                at = next;
            }
            // Column dimension second.
            class = 2;
            let a = col_logical[src_coord.row as usize];
            let b = col_logical[dst_coord.row as usize];
            for (logical, crossed) in route_cycle(a, b, rows) {
                if crossed {
                    class = 3;
                }
                let next = grid.id(TileCoord::new(col_cycle[logical], dst_coord.col));
                hops.push(make_hop(topology, at, next, class));
                at = next;
            }
            paths[src.index() * n + dst.index()] = hops;
        }
    }
    Ok(Routes {
        n,
        algorithm: RoutingAlgorithm::TorusDateline,
        num_vc_classes: 4,
        table: Table::Dense { paths },
    })
}

// ---------------------------------------------------------------------------
// Hypercube e-cube routing.
// ---------------------------------------------------------------------------

pub(super) fn build_ecube(topology: &Topology) -> Result<Routes, BuildRoutesError> {
    let grid = topology.grid();
    if !grid.rows().is_power_of_two() || !grid.cols().is_power_of_two() {
        return Err(BuildRoutesError::NotApplicable {
            algorithm: RoutingAlgorithm::ECube,
            reason: "grid dimensions are not powers of two".to_owned(),
        });
    }
    let col_bits = grid.cols().trailing_zeros();
    let hid = |coord: TileCoord| -> u32 {
        ((generators::gray(coord.row) as u32) << col_bits) | generators::gray(coord.col) as u32
    };
    let mut by_hid = vec![TileId::new(0); grid.num_tiles()];
    for coord in grid.coords() {
        by_hid[hid(coord) as usize] = grid.id(coord);
    }
    let n = topology.num_tiles();
    let mut paths = vec![Vec::new(); n * n];
    for src_coord in grid.coords() {
        let src = grid.id(src_coord);
        for dst_coord in grid.coords() {
            let dst = grid.id(dst_coord);
            if src == dst {
                continue;
            }
            let mut hops = Vec::new();
            let mut at = src;
            let mut h = hid(src_coord);
            let target = hid(dst_coord);
            // Fix differing bits from least to most significant.
            while h != target {
                let bit = (h ^ target).trailing_zeros();
                h ^= 1 << bit;
                let next = by_hid[h as usize];
                hops.push(make_hop(topology, at, next, 0));
                at = next;
            }
            paths[src.index() * n + dst.index()] = hops;
        }
    }
    Ok(Routes {
        n,
        algorithm: RoutingAlgorithm::ECube,
        num_vc_classes: 1,
        table: Table::Dense { paths },
    })
}

// ---------------------------------------------------------------------------
// Generic minimal routing with hop-index VC escalation.
// ---------------------------------------------------------------------------

/// Materializes the per-destination next-hop construction (see
/// [`hop_escalation_table`]) into dense paths, so the dense reference and
/// the compact form share one deterministic tie-break and reconstruct
/// identical paths.
pub(super) fn build_hop_escalation(topology: &Topology) -> Result<Routes, BuildRoutesError> {
    let n = topology.num_tiles();
    let (next_port, num_vc_classes) = hop_escalation_table(topology)?;
    let mut paths = vec![Vec::new(); n * n];
    for src in topology.grid().tiles() {
        for dst in topology.grid().tiles() {
            if dst == src {
                continue;
            }
            let mut hops = Vec::new();
            let mut at = src;
            while at != dst {
                let port = next_port[dst.index() * n + at.index()] as usize;
                let (to, _) = topology.neighbors(at)[port];
                let mut hop = make_hop(topology, at, to, 0);
                hop.vc_class = hops.len().min(u8::MAX as usize) as u8;
                hops.push(hop);
                at = to;
            }
            paths[src.index() * n + dst.index()] = hops;
        }
    }
    Ok(Routes {
        n,
        algorithm: RoutingAlgorithm::HopEscalation,
        num_vc_classes,
        table: Table::Dense { paths },
    })
}
