//! The compact next-hop form: O(1) `(current router, src, dst, hop) →
//! (out port, VC class)` queries from per-algorithm kernels, with no
//! per-pair heap allocation.
//!
//! Each kernel answers the query from closed-form state (cycle
//! positions, Gray codes, 1D line banks, per-destination port tables)
//! sized O(n)–O(n^1.5) instead of the dense form's O(n² · hops), and
//! reconstructs paths bit-identical to the dense builders — the
//! equivalence suite in `tests/` enforces this for every generator.

use crate::generators;
use crate::grid::TileId;
use crate::topology::{ChannelId, Topology, TopologyKind};

use super::line::{row_col_adjacency, LineBank, CLASSES_PER_PHASE, MAX_REVERSALS};
use super::{BuildRoutesError, Hop, Routes, RoutingAlgorithm, Table};

/// Per-tile sorted adjacency in the topology's canonical neighbor order
/// — the same order [`Topology::neighbors`] iterates, which is also the
/// order the simulator numbers router ports in. A kernel's next tile
/// therefore maps to an out port by position in this list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(super) struct Csr {
    offsets: Vec<u32>,
    tiles: Vec<u32>,
    channels: Vec<u32>,
}

impl Csr {
    pub(super) fn build(topology: &Topology) -> Self {
        let n = topology.num_tiles();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut tiles = Vec::new();
        let mut channels = Vec::new();
        offsets.push(0);
        for tile in topology.grid().tiles() {
            for &(neighbor, link) in topology.neighbors(tile) {
                tiles.push(neighbor.index() as u32);
                channels.push(topology.channel_from(tile, link).id.index() as u32);
            }
            offsets.push(u32::try_from(tiles.len()).expect("adjacency fits u32"));
        }
        Self {
            offsets,
            tiles,
            channels,
        }
    }

    /// The out-port index (position in the sorted neighbor list) of the
    /// link from `at` to `to`.
    pub(super) fn port_of(&self, at: usize, to: u32) -> u32 {
        let lo = self.offsets[at] as usize;
        let hi = self.offsets[at + 1] as usize;
        let slot = self.tiles[lo..hi]
            .binary_search(&to)
            .unwrap_or_else(|_| panic!("no link {at} → {to}"));
        slot as u32
    }

    /// The `(neighbor tile, directed channel)` behind port `port` of `at`.
    pub(super) fn entry(&self, at: usize, port: u32) -> (u32, u32) {
        let slot = self.offsets[at] as usize + port as usize;
        (self.tiles[slot], self.channels[slot])
    }

    /// Number of ports (sorted neighbors) of `at`.
    pub(super) fn degree(&self, at: usize) -> usize {
        (self.offsets[at + 1] - self.offsets[at]) as usize
    }

    /// Approximate resident heap bytes.
    pub(super) fn bytes(&self) -> usize {
        (self.offsets.len() + self.tiles.len() + self.channels.len()) * std::mem::size_of::<u32>()
    }
}

/// The per-algorithm closed-form state a [`NextHopTable`] queries.
#[derive(Debug, Clone, PartialEq)]
pub(super) enum Kernel {
    /// Per-row and per-column all-pairs 1D move banks.
    RowColumn {
        rows: Vec<LineBank>,
        cols: Vec<LineBank>,
    },
    /// Cycle position of every tile and tile at every position.
    RingDateline { pos: Vec<u32>, order: Vec<u32> },
    /// Row/column cycle orders and their logical-position inverses.
    TorusDateline {
        row_cycle: Vec<u16>,
        col_cycle: Vec<u16>,
        row_logical: Vec<u16>,
        col_logical: Vec<u16>,
    },
    /// Hypercube id of every tile and tile of every hypercube id.
    ECube { hid: Vec<u32>, by_hid: Vec<u32> },
    /// Flat per-destination out-port table: `port[dst · n + at]`.
    HopEscalation { next_port: Vec<u8> },
    /// The masked post-fault analog of `HopEscalation`: routes over a
    /// surviving subgraph with the original port numbering,
    /// [`super::NO_ROUTE`] marking unreachable pairs, and hop classes
    /// clamped to `max_class` so the replaced table's VC partition is
    /// preserved.
    Degraded { next_port: Vec<u8>, max_class: u8 },
}

/// A compact next-hop routing table (see [`Kernel`]).
#[derive(Debug, Clone, PartialEq)]
pub(super) struct NextHopTable {
    pub(super) csr: Csr,
    rows: u16,
    cols: u16,
    kernel: Kernel,
}

impl NextHopTable {
    /// `(out port, VC class)` at tile `at` for a `src → dst` flit whose
    /// next hop is the `hop`-th of its path. O(1).
    pub(super) fn port_and_class(&self, at: usize, src: usize, dst: usize, hop: usize) -> (u8, u8) {
        let (port, class) = self.step(at, src, dst, hop);
        (u8::try_from(port).expect("radix fits u8"), class)
    }

    /// The full [`Hop`] (channel, next tile, class) of the same query.
    pub(super) fn hop_at(&self, at: usize, src: usize, dst: usize, hop: usize) -> Hop {
        let (port, vc_class) = self.step(at, src, dst, hop);
        if matches!(self.kernel, Kernel::Degraded { .. }) {
            assert_ne!(
                port,
                u32::from(super::NO_ROUTE),
                "no surviving route from tile {at} to tile {dst}"
            );
        }
        let (to, channel) = self.csr.entry(at, port);
        Hop {
            channel: ChannelId::new(channel),
            to: TileId::new(to),
            vc_class,
        }
    }

    fn step(&self, at: usize, src: usize, dst: usize, hop: usize) -> (u32, u8) {
        let cols = self.cols as usize;
        match &self.kernel {
            Kernel::RowColumn {
                rows,
                cols: col_banks,
            } => {
                let (sr, sc) = (src / cols, src % cols);
                let (dr, dc) = (dst / cols, dst % cols);
                let row_list = rows[sr].list(sc as u16, dc as u16).expect("row connected");
                let (next, class) = if hop < row_list.len() {
                    let mv = row_list[hop];
                    (
                        sr * cols + mv.to_pos as usize,
                        mv.reversals.min(MAX_REVERSALS),
                    )
                } else {
                    let col_list = col_banks[dc]
                        .list(sr as u16, dr as u16)
                        .expect("column connected");
                    let mv = col_list[hop - row_list.len()];
                    (
                        mv.to_pos as usize * cols + dc,
                        CLASSES_PER_PHASE + mv.reversals.min(MAX_REVERSALS),
                    )
                };
                (self.csr.port_of(at, next as u32), class)
            }
            Kernel::RingDateline { pos, order } => {
                let n = order.len();
                let (ps, pa) = (pos[src] as usize, pos[at] as usize);
                let pd = pos[dst] as usize;
                let forward = (pd + n - ps) % n;
                let backward = n - forward;
                let (np, crossed) = if forward <= backward {
                    ((pa + 1) % n, (pa + 1) % n == 0 || pa < ps)
                } else {
                    ((pa + n - 1) % n, pa == 0 || pa > ps)
                };
                (self.csr.port_of(at, order[np]), u8::from(crossed))
            }
            Kernel::TorusDateline {
                row_cycle,
                col_cycle,
                row_logical,
                col_logical,
            } => {
                let (ar, ac) = (at / cols, at % cols);
                let (sr, sc) = (src / cols, src % cols);
                let (dr, dc) = (dst / cols, dst % cols);
                // Dimension order: the row cycle first, then the column
                // cycle — all in logical (dateline-relative) positions.
                let (next, class) = if ac != dc {
                    let len = cols;
                    let a = row_logical[sc] as usize;
                    let b = row_logical[dc] as usize;
                    let pa = row_logical[ac] as usize;
                    let (np, crossed) = cycle_step(a, b, pa, len);
                    (ar * cols + row_cycle[np] as usize, u8::from(crossed))
                } else {
                    let len = self.rows as usize;
                    let a = col_logical[sr] as usize;
                    let b = col_logical[dr] as usize;
                    let pa = col_logical[ar] as usize;
                    let (np, crossed) = cycle_step(a, b, pa, len);
                    (col_cycle[np] as usize * cols + ac, 2 + u8::from(crossed))
                };
                (self.csr.port_of(at, next as u32), class)
            }
            Kernel::ECube { hid, by_hid } => {
                let (h, target) = (hid[at], hid[dst]);
                let bit = (h ^ target).trailing_zeros();
                let next = by_hid[(h ^ (1 << bit)) as usize];
                (self.csr.port_of(at, next), 0)
            }
            Kernel::HopEscalation { next_port } => {
                let n = self.rows as usize * cols;
                (
                    u32::from(next_port[dst * n + at]),
                    hop.min(u8::MAX as usize) as u8,
                )
            }
            Kernel::Degraded {
                next_port,
                max_class,
            } => {
                let n = self.rows as usize * cols;
                (
                    u32::from(next_port[dst * n + at]),
                    hop.min(*max_class as usize) as u8,
                )
            }
        }
    }

    /// Approximate resident heap bytes.
    pub(super) fn bytes(&self) -> usize {
        let kernel = match &self.kernel {
            Kernel::RowColumn { rows, cols } => rows
                .iter()
                .chain(cols.iter())
                .map(LineBank::bytes)
                .sum::<usize>(),
            Kernel::RingDateline { pos, order } => (pos.len() + order.len()) * 4,
            Kernel::TorusDateline {
                row_cycle,
                col_cycle,
                row_logical,
                col_logical,
            } => (row_cycle.len() + col_cycle.len() + row_logical.len() + col_logical.len()) * 2,
            Kernel::ECube { hid, by_hid } => (hid.len() + by_hid.len()) * 4,
            Kernel::HopEscalation { next_port } => next_port.len(),
            Kernel::Degraded { next_port, .. } => next_port.len() + 1,
        };
        self.csr.bytes() + kernel
    }
}

/// One step along a 1D cycle from logical `a` toward logical `b`,
/// currently at logical `pa`: the next logical position and whether the
/// dateline (logical 0) has been crossed by this or any earlier step.
/// Mirrors the dense builder's `route_cycle`, whose class bump persists
/// from the first crossing on: going forward the walk has wrapped iff it
/// arrives at 0 now or already sits below its start; going backward iff
/// it leaves 0 now or already sits above its start.
fn cycle_step(a: usize, b: usize, pa: usize, len: usize) -> (usize, bool) {
    let forward = (b + len - a) % len;
    let backward = len - forward;
    if forward <= backward {
        let np = (pa + 1) % len;
        (np, np == 0 || pa < a)
    } else {
        let np = (pa + len - 1) % len;
        (np, pa == 0 || pa > a)
    }
}

/// The deterministic per-destination next-hop construction shared by the
/// dense `HopEscalation` reference and its compact form: one reverse BFS
/// per destination, then `port[dst · n + u]` = the first sorted neighbor
/// of `u` one step closer to `dst`. Returns the port table and the
/// number of VC classes (the maximum path length — class = hop index).
///
/// # Errors
///
/// Returns [`BuildRoutesError::Disconnected`] if some pair of tiles has
/// no path.
pub(super) fn hop_escalation_table(topology: &Topology) -> Result<(Vec<u8>, u8), BuildRoutesError> {
    let n = topology.num_tiles();
    let mut next_port = vec![0u8; n * n];
    let mut max_dist = 0u32;
    let mut dist = vec![u32::MAX; n];
    for dst in topology.grid().tiles() {
        dist.fill(u32::MAX);
        let mut queue = std::collections::VecDeque::new();
        dist[dst.index()] = 0;
        queue.push_back(dst);
        while let Some(t) = queue.pop_front() {
            for &(next, _) in topology.neighbors(t) {
                if dist[next.index()] == u32::MAX {
                    dist[next.index()] = dist[t.index()] + 1;
                    queue.push_back(next);
                }
            }
        }
        for u in topology.grid().tiles() {
            if u == dst {
                continue;
            }
            let du = dist[u.index()];
            if du == u32::MAX {
                return Err(BuildRoutesError::Disconnected {
                    reason: format!("no path from tile {} to tile {}", u.index(), dst.index()),
                });
            }
            max_dist = max_dist.max(du);
            let port = topology
                .neighbors(u)
                .iter()
                .position(|&(v, _)| dist[v.index()] == du - 1)
                .expect("BFS predecessor exists");
            next_port[dst.index() * n + u.index()] = u8::try_from(port).expect("radix fits u8");
        }
    }
    Ok((next_port, max_dist.clamp(1, u32::from(u8::MAX)) as u8))
}

/// Builds the degraded (post-fault) table behind
/// [`super::degraded_routes_with_components`]: one masked reverse BFS per
/// surviving destination over the surviving channels, keeping the
/// original topology's port numbering. Unreachable `(at, dst)` pairs get
/// [`super::NO_ROUTE`]; the second return value maps each tile to its
/// surviving component ([`super::NO_COMPONENT`] for dead tiles).
pub(super) fn build_degraded(
    topology: &Topology,
    alive_tile: &[bool],
    alive_channel: &[bool],
    num_vc_classes: u8,
) -> (Routes, Vec<u32>) {
    let n = topology.num_tiles();
    assert_eq!(alive_tile.len(), n, "one liveness bit per tile");
    assert_eq!(
        alive_channel.len(),
        topology.num_channels(),
        "one liveness bit per directed channel"
    );
    assert!(num_vc_classes >= 1, "at least one VC class");
    let csr = Csr::build(topology);
    let grid = topology.grid();
    // The sentinel must not collide with a real port.
    let max_degree = topology.max_degree();
    assert!(
        max_degree < usize::from(super::NO_ROUTE),
        "router radix {max_degree} collides with the NO_ROUTE sentinel"
    );
    // A directed channel survives only if both endpoints and the channel
    // itself are alive. Fault masks are symmetric (links and routers die
    // whole), so reachability is mutual within a component.
    let usable = |from: usize, to: usize, channel: usize| {
        alive_tile[from] && alive_tile[to] && alive_channel[channel]
    };
    for link in 0..topology.num_links() {
        debug_assert_eq!(
            alive_channel[link * 2],
            alive_channel[link * 2 + 1],
            "fault masks must kill both directions of a link"
        );
    }
    // Surviving components, labeled in first-seen (tile id) order.
    let mut components = vec![super::NO_COMPONENT; n];
    let mut next_component = 0u32;
    let mut stack = Vec::new();
    for start in 0..n {
        if !alive_tile[start] || components[start] != super::NO_COMPONENT {
            continue;
        }
        components[start] = next_component;
        stack.push(start);
        while let Some(t) = stack.pop() {
            for port in 0..csr.degree(t) {
                let (to, channel) = csr.entry(t, port as u32);
                let to = to as usize;
                if usable(t, to, channel as usize) && components[to] == super::NO_COMPONENT {
                    components[to] = next_component;
                    stack.push(to);
                }
            }
        }
        next_component += 1;
    }
    // Masked reverse BFS per surviving destination.
    let mut next_port = vec![super::NO_ROUTE; n * n];
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for dst in 0..n {
        if !alive_tile[dst] {
            continue;
        }
        dist.fill(u32::MAX);
        queue.clear();
        dist[dst] = 0;
        queue.push_back(dst);
        while let Some(t) = queue.pop_front() {
            // Relax u when the *forward* channel u → t survives.
            for &(u, link) in topology.neighbors(TileId::new(t as u32)) {
                let channel = topology.channel_from(u, link).id.index();
                if usable(u.index(), t, channel) && dist[u.index()] == u32::MAX {
                    dist[u.index()] = dist[t] + 1;
                    queue.push_back(u.index());
                }
            }
        }
        for u in 0..n {
            let du = dist[u];
            if u == dst || du == u32::MAX {
                continue;
            }
            let port = (0..csr.degree(u))
                .position(|p| {
                    let (v, channel) = csr.entry(u, p as u32);
                    usable(u, v as usize, channel as usize) && dist[v as usize] == du - 1
                })
                .expect("BFS predecessor exists");
            next_port[dst * n + u] = u8::try_from(port).expect("radix fits u8");
        }
    }
    let routes = Routes {
        n,
        algorithm: RoutingAlgorithm::HopEscalation,
        num_vc_classes,
        table: Table::NextHop(NextHopTable {
            csr,
            rows: grid.rows(),
            cols: grid.cols(),
            kernel: Kernel::Degraded {
                next_port,
                max_class: num_vc_classes - 1,
            },
        }),
    };
    (routes, components)
}

/// Builds the compact next-hop table for `algorithm`.
pub(super) fn build_next_hop(
    topology: &Topology,
    algorithm: RoutingAlgorithm,
) -> Result<Routes, BuildRoutesError> {
    let grid = topology.grid();
    let n = topology.num_tiles();
    let (kernel, num_vc_classes) = match algorithm {
        RoutingAlgorithm::RowColumn => {
            let not_applicable = |reason: String| BuildRoutesError::NotApplicable {
                algorithm: RoutingAlgorithm::RowColumn,
                reason,
            };
            let (row_adj, col_adj) = row_col_adjacency(topology).map_err(&not_applicable)?;
            let rows: Vec<LineBank> = row_adj.iter().map(|adj| LineBank::build(adj)).collect();
            let cols: Vec<LineBank> = col_adj.iter().map(|adj| LineBank::build(adj)).collect();
            if let Some(r) = rows.iter().position(|b| !b.fully_connected()) {
                return Err(not_applicable(format!(
                    "row {r} is disconnected between some columns"
                )));
            }
            if let Some(c) = cols.iter().position(|b| !b.fully_connected()) {
                return Err(not_applicable(format!(
                    "column {c} is disconnected between some rows"
                )));
            }
            (Kernel::RowColumn { rows, cols }, CLASSES_PER_PHASE * 2)
        }
        RoutingAlgorithm::RingDateline => {
            let order_coords = generators::cycle_order_of(topology).ok_or_else(|| {
                BuildRoutesError::NotApplicable {
                    algorithm: RoutingAlgorithm::RingDateline,
                    reason: "topology is not a single cycle".to_owned(),
                }
            })?;
            let mut pos = vec![0u32; n];
            let mut order = vec![0u32; n];
            for (i, &coord) in order_coords.iter().enumerate() {
                let id = grid.id(coord).index();
                pos[id] = i as u32;
                order[i] = id as u32;
            }
            (Kernel::RingDateline { pos, order }, 2)
        }
        RoutingAlgorithm::TorusDateline => {
            let (row_cycle, col_cycle): (Vec<u16>, Vec<u16>) =
                if topology.kind() == TopologyKind::FoldedTorus {
                    (
                        generators::folded_cycle_order(grid.cols()),
                        generators::folded_cycle_order(grid.rows()),
                    )
                } else {
                    ((0..grid.cols()).collect(), (0..grid.rows()).collect())
                };
            let invert = |cycle: &[u16]| {
                let mut inv = vec![0u16; cycle.len()];
                for (logical, &phys) in cycle.iter().enumerate() {
                    inv[phys as usize] = logical as u16;
                }
                inv
            };
            let row_logical = invert(&row_cycle);
            let col_logical = invert(&col_cycle);
            (
                Kernel::TorusDateline {
                    row_cycle,
                    col_cycle,
                    row_logical,
                    col_logical,
                },
                4,
            )
        }
        RoutingAlgorithm::ECube => {
            if !grid.rows().is_power_of_two() || !grid.cols().is_power_of_two() {
                return Err(BuildRoutesError::NotApplicable {
                    algorithm: RoutingAlgorithm::ECube,
                    reason: "grid dimensions are not powers of two".to_owned(),
                });
            }
            let col_bits = grid.cols().trailing_zeros();
            let mut hid = vec![0u32; n];
            let mut by_hid = vec![0u32; n];
            for coord in grid.coords() {
                let h = ((generators::gray(coord.row) as u32) << col_bits)
                    | generators::gray(coord.col) as u32;
                let id = grid.id(coord).index();
                hid[id] = h;
                by_hid[h as usize] = id as u32;
            }
            (Kernel::ECube { hid, by_hid }, 1)
        }
        RoutingAlgorithm::HopEscalation => {
            let (next_port, classes) = hop_escalation_table(topology)?;
            (Kernel::HopEscalation { next_port }, classes)
        }
        RoutingAlgorithm::Hierarchical => return super::hier::build_hierarchical(topology),
    };
    Ok(Routes {
        n,
        algorithm,
        num_vc_classes,
        table: Table::NextHop(NextHopTable {
            csr: Csr::build(topology),
            rows: grid.rows(),
            cols: grid.cols(),
            kernel,
        }),
    })
}
