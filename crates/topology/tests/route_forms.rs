//! Route-form equivalence suite.
//!
//! The dense table is the semantic reference; the compact next-hop form
//! must reconstruct **bit-identical** paths for every legacy generator,
//! and its `(out port, VC class)` answers must match what the simulator
//! would derive from the dense hops. The hierarchical multi-die form is
//! checked against the structural invariants it promises instead:
//! valid paths, deadlock freedom, bounded VC classes, and O(1) hop
//! counts that agree with the walked paths.

use proptest::prelude::*;

use shg_topology::db::{BoundaryRule, DieSpec, RegionRule, TopologyDb};
use shg_topology::generators::{self, GeneratorSpec};
use shg_topology::routing::{
    self, build_routes, build_routes_with, default_routes_with, RouteForm, Routes, RoutingAlgorithm,
};
use shg_topology::{Grid, TileClass, Topology};

/// Every routed pair of `compact` reconstructs the dense path exactly,
/// and the port/class query matches the port the simulator derives from
/// each dense hop (the channel's position in the sorted neighbor list).
fn assert_forms_identical(topology: &Topology, dense: &Routes, compact: &Routes) {
    assert_eq!(dense.form(), RouteForm::Dense);
    assert_eq!(compact.form(), RouteForm::NextHop);
    assert_eq!(dense.algorithm(), compact.algorithm());
    assert_eq!(dense.num_vc_classes(), compact.num_vc_classes());
    assert_eq!(dense.semantic_digest(), compact.semantic_digest());
    for src in topology.grid().tiles() {
        for dst in topology.grid().tiles() {
            let reference = dense.path(src, dst);
            assert_eq!(
                compact.path_vec(src, dst).as_slice(),
                reference,
                "{topology}: path {src} → {dst} differs"
            );
            assert_eq!(compact.hop_count(src, dst), reference.len());
            let mut at = src;
            for (i, hop) in reference.iter().enumerate() {
                let port = topology
                    .neighbors(at)
                    .iter()
                    .position(|&(n, _)| n == hop.to)
                    .expect("dense hop follows a real link");
                assert_eq!(
                    compact.port_and_class(at, src, dst, i),
                    (u8::try_from(port).expect("radix fits u8"), hop.vc_class),
                    "{topology}: port/class at {at} on {src} → {dst} hop {i}"
                );
                at = hop.to;
            }
        }
    }
}

fn check_generator(topology: &Topology, algorithm: RoutingAlgorithm) {
    let dense = build_routes(topology, algorithm).expect("dense builds");
    let compact =
        build_routes_with(topology, algorithm, RouteForm::NextHop).expect("compact builds");
    assert_forms_identical(topology, &dense, &compact);
}

#[test]
fn next_hop_matches_dense_on_every_generator() {
    let g8 = Grid::new(8, 8);
    check_generator(&generators::mesh(g8), RoutingAlgorithm::RowColumn);
    check_generator(
        &generators::flattened_butterfly(g8),
        RoutingAlgorithm::RowColumn,
    );
    check_generator(
        &generators::ruche(g8, 2).expect("ruche factor 2"),
        RoutingAlgorithm::RowColumn,
    );
    let sr = [4].into_iter().collect();
    let sc = [2, 5].into_iter().collect();
    check_generator(
        &generators::row_column_skip(g8, &sr, &sc).expect("scenario a"),
        RoutingAlgorithm::RowColumn,
    );
    check_generator(&generators::ring(g8), RoutingAlgorithm::RingDateline);
    check_generator(&generators::torus(g8), RoutingAlgorithm::TorusDateline);
    check_generator(
        &generators::folded_torus(g8),
        RoutingAlgorithm::TorusDateline,
    );
    check_generator(
        &generators::hypercube(g8).expect("64 = 2^6"),
        RoutingAlgorithm::ECube,
    );
    check_generator(
        &generators::slim_noc(Grid::new(16, 8)).expect("128 = 2·8²"),
        RoutingAlgorithm::HopEscalation,
    );
}

#[test]
fn next_hop_matches_dense_on_odd_and_flat_grids() {
    // Odd extents exercise the cycle shorter-way tie-breaks; 1×n and
    // n×1 grids exercise degenerate dimensions.
    for grid in [Grid::new(5, 7), Grid::new(1, 9), Grid::new(6, 1)] {
        check_generator(&generators::mesh(grid), RoutingAlgorithm::RowColumn);
    }
    for grid in [Grid::new(5, 5), Grid::new(3, 8)] {
        check_generator(&generators::torus(grid), RoutingAlgorithm::TorusDateline);
        check_generator(&generators::ring(grid), RoutingAlgorithm::RingDateline);
    }
    check_generator(
        &generators::folded_torus(Grid::new(6, 4)),
        RoutingAlgorithm::TorusDateline,
    );
}

/// Structural checks every hierarchical table must satisfy.
fn assert_hier_invariants(topology: &Topology, routes: &Routes, class_bound: u8) {
    assert_eq!(routes.form(), RouteForm::Hierarchical);
    assert_eq!(routes.algorithm(), RoutingAlgorithm::Hierarchical);
    assert!(
        routes.num_vc_classes() <= class_bound,
        "{} classes exceed the bound {class_bound}",
        routes.num_vc_classes()
    );
    assert!(routes.validate(topology), "invalid hierarchical paths");
    assert!(
        routes.is_deadlock_free(topology),
        "hierarchical channel dependency cycle"
    );
    // O(1) hop counts agree with the walked paths, and no path beats
    // the BFS distance.
    for src in topology.grid().tiles() {
        let dist = topology.bfs_distances(src);
        for dst in topology.grid().tiles() {
            let hops = routes.hop_count(src, dst);
            assert_eq!(hops, routes.path_vec(src, dst).len());
            assert!(hops as u32 >= dist[dst.index()], "{src} → {dst} beats BFS");
        }
    }
}

/// A two-die database with `base` dies stitched every `every` rows.
fn two_die_db(rows: u16, cols: (u16, u16), base: (&str, &str), every: u16) -> TopologyDb {
    TopologyDb {
        dies: vec![
            DieSpec {
                name: "left".to_owned(),
                rows,
                cols: cols.0,
                base: base.0.parse::<GeneratorSpec>().expect(base.0),
                regions: Vec::new(),
            },
            DieSpec {
                name: "right".to_owned(),
                rows,
                cols: cols.1,
                base: base.1.parse::<GeneratorSpec>().expect(base.1),
                regions: Vec::new(),
            },
        ],
        boundary: BoundaryRule { every, latency: 2 },
    }
}

#[test]
fn hierarchical_routes_a_stitched_mesh_pair_minimally() {
    // With a seam on every row, every row is a through row: routing is
    // pure row-then-column, hop-minimal, and needs only two classes
    // (one per phase, no reversals on mesh lines).
    let db = two_die_db(4, (4, 5), ("mesh", "mesh"), 1);
    let topology = db.instantiate().expect("instantiates");
    let routes = default_routes_with(&topology, RouteForm::NextHop).expect("routes");
    assert_hier_invariants(&topology, &routes, 8);
    assert_eq!(routes.num_vc_classes(), 2);
    assert!(routes.is_hop_minimal(&topology));
}

#[test]
fn hierarchical_detours_through_seam_rows() {
    // Seams only on rows 0 and 2: the other rows cannot cross the die
    // boundary themselves, so cross-die pairs detour through a through
    // row; within-die pairs stay minimal.
    let db = two_die_db(4, (3, 3), ("mesh", "mesh"), 2);
    let topology = db.instantiate().expect("instantiates");
    let routes = default_routes_with(&topology, RouteForm::NextHop).expect("routes");
    assert_hier_invariants(&topology, &routes, 8);
    assert!(!routes.is_hop_minimal(&topology), "detours must cost hops");
}

#[test]
fn hierarchical_handles_the_ci_smoke_database() {
    let db = TopologyDb::parse(
        "die/l/4x3/mesh;die/r/4x3/shg:sc=2;region/r/r0..2/c0..3/memory;boundary/every=1/latency=3",
    )
    .expect("parses");
    let topology = db.instantiate().expect("instantiates");
    let routes = default_routes_with(&topology, RouteForm::NextHop).expect("routes");
    assert_hier_invariants(&topology, &routes, 8);
}

#[test]
fn hierarchical_scales_to_the_readme_two_die_database() {
    // The README's 10,240-tile two-die package. Full-pair validation
    // would walk 10⁸ paths, so this test checks the class budget, the
    // table footprint, and a deterministic sample of paths against BFS.
    let db = TopologyDb::parse(
        "die/compute/64x80/shg:sr=4:sc=2,5;die/hbm/64x80/mesh;\
         region/hbm/r0..64/c0..80/memory/sc=2;boundary/every=4/latency=5",
    )
    .expect("parses");
    let topology = db.instantiate().expect("instantiates");
    let routes = default_routes_with(&topology, RouteForm::NextHop).expect("routes");
    assert_eq!(routes.form(), RouteForm::Hierarchical);
    assert!(
        routes.num_vc_classes() <= 8,
        "{} classes exceed the simulator's default 8 VCs",
        routes.num_vc_classes()
    );
    // The compact table must stay far below the dense form's multi-GB
    // footprint (n² path vectors alone are 10240² · 24 B ≈ 2.5 GB).
    assert!(
        routes.table_bytes() < 256 << 20,
        "table is {} bytes",
        routes.table_bytes()
    );
    let n = topology.num_tiles();
    for src in (0..n).step_by(997) {
        let src = shg_topology::TileId::new(src as u32);
        let dist = topology.bfs_distances(src);
        for dst in (0..n).step_by(613) {
            let dst = shg_topology::TileId::new(dst as u32);
            if src == dst {
                continue;
            }
            let path = routes.path_vec(src, dst);
            assert_eq!(path.len(), routes.hop_count(src, dst));
            assert!(path.len() as u32 >= dist[dst.index()]);
            let mut at = src;
            for hop in &path {
                let channel = topology.channel(hop.channel);
                assert_eq!(channel.from, at);
                assert_eq!(channel.to, hop.to);
                assert!(hop.vc_class < routes.num_vc_classes());
                at = hop.to;
            }
            assert_eq!(at, dst);
        }
    }
}

#[test]
fn next_hop_default_falls_back_when_hierarchy_does_not_apply() {
    // SlimNoC links are not row/column aligned, so the next-hop default
    // stays on compact hop escalation rather than the hierarchical form.
    let slim = generators::slim_noc(Grid::new(16, 8)).expect("128 tiles");
    let routes = default_routes_with(&slim, RouteForm::NextHop).expect("routes");
    assert_eq!(routes.form(), RouteForm::NextHop);
    assert_eq!(routes.algorithm(), RoutingAlgorithm::HopEscalation);
    let dense = routing::default_routes(&slim).expect("dense routes");
    assert_forms_identical(&slim, &dense, &routes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random two-die stitched databases: the hierarchical table always
    /// builds, stays within the simulator's VC budget, and satisfies
    /// the structural invariants.
    #[test]
    fn hierarchical_survives_random_two_die_databases(
        (rows, left_cols, right_cols) in (2u16..=6, 2u16..=6, 2u16..=6),
        every in 1u16..=4,
        base_left in 0u8..=1,
        base_right in 0u8..=1,
        (r0, r_len) in (0u16..=4, 1u16..=4),
        class_memory in 0u8..=1,
    ) {
        let every = every.min(rows);
        // Column skips span rows, so the distance must fit the die height.
        let base = |pick: u8| if pick == 1 && rows > 2 { "shg:sc=2" } else { "mesh" };
        let mut db = two_die_db(
            rows,
            (left_cols, right_cols),
            (base(base_left), base(base_right)),
            every,
        );
        let r0 = r0.min(rows - 1);
        let r1 = (r0 + r_len).min(rows);
        let class = if class_memory == 1 { TileClass::Memory } else { TileClass::Io };
        db.dies[1].regions.push(RegionRule::class(r0..r1, 0..right_cols, class));
        let topology = db.instantiate().expect("multi-die products stay connected");
        let routes = default_routes_with(&topology, RouteForm::NextHop).expect("routes");
        prop_assert_eq!(routes.form(), RouteForm::Hierarchical);
        assert_hier_invariants(&topology, &routes, 8);
    }
}
