//! Property-based invariants of the topology crate.

use proptest::prelude::*;

use shg_topology::{generators, metrics, routing, Grid, TileId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generator produces a connected graph whose BFS distances are
    /// consistent with the routing tables.
    #[test]
    fn generators_produce_consistent_graphs((r, c) in (2u16..=8, 2u16..=8)) {
        let grid = Grid::new(r, c);
        let mut topologies = vec![
            generators::ring(grid),
            generators::mesh(grid),
            generators::torus(grid),
            generators::folded_torus(grid),
            generators::flattened_butterfly(grid),
        ];
        if let Ok(hc) = generators::hypercube(grid) {
            topologies.push(hc);
        }
        for topology in &topologies {
            // Degree sum = 2 × links.
            let degree_sum: usize = grid.tiles().map(|t| topology.degree(t)).sum();
            prop_assert_eq!(degree_sum, 2 * topology.num_links());
            // Channels pair up.
            prop_assert_eq!(topology.num_channels(), 2 * topology.num_links());
            // Routing tables agree with BFS distances.
            let routes = routing::default_routes(topology).expect("routes");
            prop_assert!(routes.is_hop_minimal(topology), "{}", topology);
            prop_assert!(routes.is_deadlock_free(topology), "{}", topology);
        }
    }

    /// Diameters match the closed forms of Table I.
    #[test]
    fn diameters_match_closed_forms((r, c) in (2u16..=8, 2u16..=8)) {
        let grid = Grid::new(r, c);
        prop_assert_eq!(
            metrics::diameter(&generators::mesh(grid)),
            u32::from(r + c) - 2
        );
        prop_assert_eq!(
            metrics::diameter(&generators::torus(grid)),
            u32::from(r / 2 + c / 2)
        );
        if r * c >= 3 {
            prop_assert_eq!(
                metrics::diameter(&generators::ring(grid)),
                u32::from(r) * u32::from(c) / 2
            );
        }
        if r.is_power_of_two() && c.is_power_of_two() && r * c >= 2 {
            let hc = generators::hypercube(grid).expect("powers of two");
            prop_assert_eq!(
                metrics::diameter(&hc),
                (u32::from(r) * u32::from(c)).trailing_zeros()
            );
        }
    }

    /// Physical distance never beats Manhattan distance, and hop distance
    /// never beats physical distance divided by the longest link.
    #[test]
    fn distance_relations((r, c) in (2u16..=7, 2u16..=7), seed in 0u64..100) {
        let grid = Grid::new(r, c);
        let topology = generators::torus(grid);
        let _ = seed;
        let physical = metrics::DistanceMatrix::physical(&topology);
        for a in grid.tiles() {
            for b in grid.tiles() {
                prop_assert!(physical.distance(a, b) >= grid.manhattan(a, b));
            }
        }
    }

    /// Channel loads under minimal routing are positive on every used
    /// channel and conserve total path hops.
    #[test]
    fn channel_load_conservation((r, c) in (2u16..=7, 2u16..=7)) {
        let grid = Grid::new(r, c);
        let topology = generators::mesh(grid);
        let routes = routing::default_routes(&topology).expect("routes");
        let loads = routes.channel_loads(&topology);
        let total: u64 = loads.iter().map(|&l| u64::from(l)).sum();
        let hops: u64 = grid
            .tiles()
            .flat_map(|a| grid.tiles().map(move |b| (a, b)))
            .map(|(a, b)| routes.hop_count(a, b) as u64)
            .sum();
        prop_assert_eq!(total, hops);
    }
}

#[test]
fn gf_field_tables_are_latin_squares() {
    // Addition and multiplication (on nonzero elements) of GF(q) form
    // Latin squares — a complete structural check of the field tables.
    for q in [4usize, 5, 7, 8, 9] {
        let f = shg_topology::gf::Field::new(q).expect("prime power");
        for x in 0..q {
            let row: std::collections::HashSet<_> = (0..q).map(|y| f.add(x, y)).collect();
            assert_eq!(row.len(), q, "GF({q}) addition row {x}");
        }
        for x in 1..q {
            let row: std::collections::HashSet<_> = (1..q).map(|y| f.mul(x, y)).collect();
            assert_eq!(row.len(), q - 1, "GF({q}) multiplication row {x}");
        }
    }
}

#[test]
fn mms_graph_is_vertex_symmetric_in_degree() {
    for q in [5usize, 8] {
        let g = shg_topology::mms::MmsGraph::new(q).expect("prime power");
        let degrees = g.degrees();
        let first = degrees[0];
        assert!(degrees.iter().all(|&d| d == first), "q={q}");
    }
}

#[test]
fn routed_path_endpoints_are_correct_for_all_generators() {
    let grid = Grid::new(4, 4);
    for topology in [
        generators::ring(grid),
        generators::mesh(grid),
        generators::torus(grid),
        generators::folded_torus(grid),
        generators::hypercube(grid).expect("4x4"),
        generators::flattened_butterfly(grid),
    ] {
        let routes = routing::default_routes(&topology).expect("routes");
        assert!(routes.validate(&topology), "{topology}");
        // Spot-check a diagonal pair.
        let a = TileId::new(0);
        let b = TileId::new(15);
        let path = routes.path(a, b);
        assert!(!path.is_empty());
        assert_eq!(path.last().expect("nonempty").to, b);
    }
}
