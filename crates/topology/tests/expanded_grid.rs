//! Instantiation-equivalence suite: the topology database reproduces
//! every legacy generator link-for-link (and kind-for-kind, so every
//! structural fingerprint downstream is unchanged), and random
//! multi-die region mixes obey the expanded grid's invariants.

use proptest::prelude::*;

use shg_topology::db::{BoundaryRule, DieSpec, RegionRule, TopologyDb};
use shg_topology::generators::{self, GeneratorSpec};
use shg_topology::{metrics, routing, Grid, LinkId, TileClass, TileCoord, Topology};

/// The single-die no-region database of `spec` on an R×C grid.
fn single(rows: u16, cols: u16, spec: &str) -> TopologyDb {
    TopologyDb::single("d", rows, cols, spec.parse::<GeneratorSpec>().expect(spec))
}

/// Full structural equality plus the metrics the paper compares by.
fn assert_equivalent(legacy: &Topology, db: &TopologyDb) {
    let instantiated = db.instantiate().expect("database instantiates");
    assert_eq!(&instantiated, legacy, "database: {db}");
    assert_eq!(instantiated.kind(), legacy.kind());
    assert_eq!(instantiated.links(), legacy.links());
    assert_eq!(
        metrics::diameter(&instantiated),
        metrics::diameter(legacy),
        "database: {db}"
    );
    assert_eq!(
        metrics::average_hops(&instantiated),
        metrics::average_hops(legacy)
    );
    for tile in legacy.grid().tiles() {
        assert_eq!(instantiated.degree(tile), legacy.degree(tile));
    }
    // The textual forms round-trip to the same database, so the wire
    // form a sweep request ships reproduces the same topology.
    let display = TopologyDb::parse(&db.to_string()).expect("display parses");
    let wire = TopologyDb::parse(&db.wire()).expect("wire parses");
    assert_eq!(&display, db);
    assert_eq!(&wire, db);
}

#[test]
fn every_legacy_generator_matches_its_single_die_database() {
    let g8 = Grid::new(8, 8);
    assert_equivalent(&generators::ring(g8), &single(8, 8, "ring"));
    assert_equivalent(&generators::mesh(g8), &single(8, 8, "mesh"));
    assert_equivalent(&generators::torus(g8), &single(8, 8, "torus"));
    assert_equivalent(&generators::folded_torus(g8), &single(8, 8, "folded-torus"));
    assert_equivalent(&generators::flattened_butterfly(g8), &single(8, 8, "fb"));
    assert_equivalent(
        &generators::hypercube(g8).expect("64 = 2^6"),
        &single(8, 8, "hypercube"),
    );
    assert_equivalent(
        &generators::slim_noc(Grid::new(16, 8)).expect("128 = 2·8²"),
        &single(16, 8, "slimnoc"),
    );
    assert_equivalent(
        &generators::ruche(g8, 2).expect("ruche factor 2"),
        &single(8, 8, "ruche:2"),
    );
    // Scenario a's customized sparse Hamming graph.
    let sr = [4].into_iter().collect();
    let sc = [2, 5].into_iter().collect();
    assert_equivalent(
        &generators::row_column_skip(g8, &sr, &sc).expect("scenario a"),
        &single(8, 8, "shg:sr=4:sc=2,5"),
    );
}

#[test]
fn parsed_text_reproduces_the_legacy_constructor() {
    let parsed = TopologyDb::parse("die d 8x8 mesh")
        .expect("parses")
        .instantiate()
        .expect("instantiates");
    assert_eq!(parsed, generators::mesh(Grid::new(8, 8)));
    let wire = TopologyDb::parse("die/d/8x8/shg:sr=4:sc=2,5")
        .expect("wire form parses")
        .instantiate()
        .expect("instantiates");
    let sr = [4].into_iter().collect();
    let sc = [2, 5].into_iter().collect();
    assert_eq!(
        wire,
        generators::row_column_skip(Grid::new(8, 8), &sr, &sc).expect("scenario a")
    );
}

#[test]
fn single_die_database_routes_like_its_legacy_twin() {
    for spec in ["mesh", "torus", "shg:sr=4:sc=2,5"] {
        let legacy = single(8, 8, spec).instantiate().expect(spec);
        let routes = routing::default_routes(&legacy).expect(spec);
        assert!(routes.is_deadlock_free(&legacy), "{spec}");
        assert!(routes.is_hop_minimal(&legacy), "{spec}");
    }
}

/// A two-die database: `mesh` left die, `base` right die, one region
/// painted onto the right die.
fn two_die(rows: u16, cols: (u16, u16), region: RegionRule, boundary: BoundaryRule) -> TopologyDb {
    TopologyDb {
        dies: vec![
            DieSpec {
                name: "left".to_owned(),
                rows,
                cols: cols.0,
                base: GeneratorSpec::Mesh,
                regions: Vec::new(),
            },
            DieSpec {
                name: "right".to_owned(),
                rows,
                cols: cols.1,
                base: GeneratorSpec::Mesh,
                regions: vec![region],
            },
        ],
        boundary,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random two-die region mixes: the instantiated product is
    /// connected (construction validates it), crosses the seam exactly
    /// ceil(rows/every) times, paints classes only inside the region
    /// rectangle, and instantiates deterministically.
    #[test]
    fn random_region_mixes_obey_expanded_grid_invariants(
        (rows, left_cols, right_cols) in (2u16..=6, 2u16..=6, 3u16..=6),
        every in 1u16..=6,
        latency in 0u32..=5,
        (r0, r_len) in (0u16..=4, 1u16..=4),
        class_memory in 0u8..=1,
        skip in 0u8..=1,
    ) {
        let (class_memory, skip) = (class_memory == 1, skip == 1);
        let every = every.min(rows);
        let r0 = r0.min(rows - 1);
        let r1 = (r0 + r_len).min(rows);
        let class = if class_memory { TileClass::Memory } else { TileClass::Io };
        let mut region = RegionRule::class(r0..r1, 0..right_cols, class);
        if skip && right_cols >= 3 {
            // A region-local column-skip distance in the valid
            // [2, width) range.
            region.skip_rows = [2].into_iter().collect();
        }
        let db = two_die(rows, (left_cols, right_cols), region.clone(), BoundaryRule { every, latency });
        let topology = db.instantiate().expect("multi-die products stay connected");
        prop_assert_eq!(topology.grid(), Grid::new(rows, left_cols + right_cols));
        prop_assert_eq!(topology.num_dies(), 2);
        prop_assert_eq!(topology.boundary_latency(), latency);

        // Seam crossings: one per stepped row, and no other link
        // crosses the die boundary.
        let crossings = (0..topology.num_links())
            .filter(|&i| topology.link_crosses_die(LinkId::new(i as u32)))
            .count();
        prop_assert_eq!(crossings, (0..rows).step_by(every as usize).count());

        // Class painting covers exactly the region's rectangle of the
        // right die; the left die stays compute.
        let expanded = db.expand().expect("expands");
        let mut painted = 0usize;
        for (die, local, tile) in expanded.cells() {
            let expected = if die.index() == 1
                && (r0..r1).contains(&local.row)
                && local.col < right_cols
            {
                painted += 1;
                class
            } else {
                TileClass::Compute
            };
            prop_assert_eq!(topology.tile_class(tile), expected);
            prop_assert_eq!(topology.tile_die(tile), die);
        }
        prop_assert_eq!(painted, usize::from(r1 - r0) * usize::from(right_cols));

        // cells() enumerates every tile exactly once.
        let mut seen: Vec<bool> = vec![false; topology.grid().num_tiles()];
        for (_, _, tile) in expanded.cells() {
            prop_assert!(!seen[tile.index()]);
            seen[tile.index()] = true;
        }
        prop_assert!(seen.into_iter().all(|s| s));

        // Region skip links stay inside their die: every added link is
        // either a base mesh link, a seam link, or intra-right-die.
        if !region.skip_rows.is_empty() {
            for (i, link) in topology.links().iter().enumerate() {
                let id = LinkId::new(i as u32);
                if !topology.link_crosses_die(id) {
                    prop_assert_eq!(topology.tile_die(link.a), topology.tile_die(link.b));
                }
            }
        }

        // Deterministic: a second instantiation is identical.
        prop_assert_eq!(db.instantiate().expect("second instantiation"), topology);
    }

    /// Single-die databases with class-only regions keep the base
    /// link structure and kind — metadata never perturbs the graph.
    #[test]
    fn class_only_regions_never_change_the_graph(
        (rows, cols) in (3u16..=8, 3u16..=8),
        (r0, c0) in (0u16..=5, 0u16..=5),
    ) {
        let r0 = r0.min(rows - 1);
        let c0 = c0.min(cols - 1);
        let mut db = TopologyDb::single("d", rows, cols, GeneratorSpec::Torus);
        db.dies[0]
            .regions
            .push(RegionRule::class(r0..rows, c0..cols, TileClass::Memory));
        let painted = db.instantiate().expect("instantiates");
        let base = generators::torus(Grid::new(rows, cols));
        prop_assert_eq!(painted.links(), base.links());
        prop_assert_eq!(painted.kind(), base.kind());
        prop_assert!(painted.meta().is_some());
        prop_assert_eq!(
            painted.tile_class(shg_topology::TileId::new(
                u32::from(r0) * u32::from(cols) + u32::from(c0)
            )),
            TileClass::Memory
        );
    }
}

#[test]
fn readme_two_die_example_instantiates_ten_thousand_tiles() {
    // The worked example of README's "Describing a topology" section.
    let db = TopologyDb::parse(
        "die compute 64x80 shg:sr=4:sc=2,5\n\
         die hbm 64x80 mesh\n\
         region hbm r0..64 c0..80 memory sc=2\n\
         boundary every=4 latency=5",
    )
    .expect("README example parses");
    let topology = db.instantiate().expect("README example instantiates");
    assert_eq!(topology.grid(), Grid::new(64, 160));
    assert!(topology.grid().num_tiles() >= 10_000);
    assert_eq!(topology.num_dies(), 2);
    assert_eq!(topology.boundary_latency(), 5);
    let expanded = db.expand().expect("expands");
    let hbm_first = expanded.global_id(shg_topology::DieId::new(1), TileCoord::new(0, 0));
    assert_eq!(topology.tile_class(hbm_first), TileClass::Memory);
}

#[test]
fn cells_iterates_in_die_major_order() {
    let db = TopologyDb::parse("die a 2x2 mesh; die b 2x3 mesh").expect("parses");
    let expanded = db.expand().expect("expands");
    let cells: Vec<(usize, TileCoord)> = expanded
        .cells()
        .map(|(die, local, _)| (die.index(), local))
        .collect();
    assert_eq!(cells.len(), 10);
    assert_eq!(cells[0], (0, TileCoord::new(0, 0)));
    assert_eq!(cells[3], (0, TileCoord::new(1, 1)));
    assert_eq!(cells[4], (1, TileCoord::new(0, 0)));
    assert_eq!(cells[9], (1, TileCoord::new(1, 2)));
}
