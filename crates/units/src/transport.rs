//! On-chip transport protocol parameters (Table II, bottom section).
//!
//! Two functions describe the transport protocol:
//!
//! * `f_bw→wires(x)`: how many physical wires a link of bandwidth `x`
//!   bits/cycle needs (e.g. AXI requires separate request/response channels
//!   plus handshake signals), and
//! * `f_AR(m, s, B)`: the area in gate equivalents of a NoC router with `m`
//!   manager ports, `s` subordinate ports and per-link bandwidth `B`.

use serde::{Deserialize, Serialize};

use crate::scalar::{BitsPerCycle, GateEquivalents, Wires};

/// Wire-count model of an on-chip transport protocol (`f_bw→wires`).
///
/// The wire count is affine in the link bandwidth:
/// `wires = ceil(factor × B) + constant`. For an AXI-style protocol the
/// factor is ≈ 2.1 (read + write data paths plus address/response overhead)
/// and the constant covers the handshake signals.
///
/// # Examples
///
/// ```
/// use shg_units::{BitsPerCycle, Transport};
///
/// let axi = Transport::axi_like();
/// let wires = axi.bw_to_wires(BitsPerCycle::new(512));
/// assert!(wires.value() > 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transport {
    /// Human-readable protocol name, e.g. `"AXI"`.
    pub name: String,
    /// Wires per bit/cycle of bandwidth.
    pub wires_per_bit: f64,
    /// Bandwidth-independent wires (handshake, IDs, QoS, …).
    pub constant_wires: u64,
}

impl Transport {
    /// `f_bw→wires`: number of wires needed for a link with bandwidth `bw`.
    #[must_use]
    pub fn bw_to_wires(&self, bw: BitsPerCycle) -> Wires {
        Wires::new((self.wires_per_bit * bw.value() as f64).ceil() as u64 + self.constant_wires)
    }

    /// An AXI-like protocol (five channels: AW, W, B, AR, R) as used by the
    /// paper's evaluation (Kurth et al. AXI NoC components): roughly 2.1
    /// wires per payload bit plus 80 handshake/sideband wires.
    #[must_use]
    pub fn axi_like() -> Self {
        Self {
            name: "AXI".to_owned(),
            wires_per_bit: 2.1,
            constant_wires: 80,
        }
    }

    /// A minimal single-channel protocol (one wire per payload bit plus a
    /// small handshake) — useful for latency-optimized designs such as
    /// MemPool's fully-combinational interconnect.
    #[must_use]
    pub fn lean() -> Self {
        Self {
            name: "lean".to_owned(),
            wires_per_bit: 1.0,
            constant_wires: 8,
        }
    }
}

/// Router-area model (`f_AR(m, s, B)`).
///
/// The dominant terms of an input-queued virtual-channel router are
///
/// * the crossbar, whose area grows with `m × s × B` (quadratic in the
///   radix, matching design principle ❶: *"the area of most router
///   architectures scales quadratically with the router radix"*),
/// * the input buffers, linear in `m × vcs × buffer_depth × B`, and
/// * per-port allocation/control logic, linear in `m + s`.
///
/// # Examples
///
/// ```
/// use shg_units::{BitsPerCycle, RouterAreaModel};
///
/// let model = RouterAreaModel::input_queued(8, 32);
/// let radix4 = model.area(5, 5, BitsPerCycle::new(512));
/// let radix8 = model.area(9, 9, BitsPerCycle::new(512));
/// assert!(radix8.value() > radix4.value());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterAreaModel {
    /// Number of virtual channels per input port.
    pub virtual_channels: u32,
    /// Buffer depth per virtual channel, in flits.
    pub buffer_depth: u32,
    /// Crossbar GE per (input × output × bit).
    pub crossbar_ge_per_bit: f64,
    /// Buffer GE per stored bit.
    pub buffer_ge_per_bit: f64,
    /// Control/allocator GE per port.
    pub control_ge_per_port: f64,
}

impl RouterAreaModel {
    /// An input-queued router with `virtual_channels` VCs of `buffer_depth`
    /// flits each, using typical standard-cell cost coefficients
    /// (0.07 GE/crosspoint-bit for a mux-based crossbar, 1.2 GE per
    /// flip-flop-stored buffer bit, 2 kGE control per port).
    #[must_use]
    pub fn input_queued(virtual_channels: u32, buffer_depth: u32) -> Self {
        Self {
            virtual_channels,
            buffer_depth,
            crossbar_ge_per_bit: 0.07,
            buffer_ge_per_bit: 1.2,
            control_ge_per_port: 2_000.0,
        }
    }

    /// `f_AR(m, s, B)`: router area in gate equivalents for `m` manager
    /// (input) ports, `s` subordinate (output) ports and link bandwidth `bw`.
    #[must_use]
    pub fn area(&self, m: u32, s: u32, bw: BitsPerCycle) -> GateEquivalents {
        let b = bw.value() as f64;
        let crossbar = self.crossbar_ge_per_bit * m as f64 * s as f64 * b;
        let buffers = self.buffer_ge_per_bit
            * m as f64
            * self.virtual_channels as f64
            * self.buffer_depth as f64
            * b;
        let control = self.control_ge_per_port * (m + s) as f64;
        GateEquivalents::new(crossbar + buffers + control)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axi_wire_count_is_affine() {
        let axi = Transport::axi_like();
        let w0 = axi.bw_to_wires(BitsPerCycle::new(0));
        assert_eq!(w0.value(), 80);
        let w512 = axi.bw_to_wires(BitsPerCycle::new(512));
        assert_eq!(w512.value(), (2.1f64 * 512.0).ceil() as u64 + 80);
    }

    #[test]
    fn router_area_superlinear_in_radix() {
        // Doubling the radix should more than double the area
        // (crossbar term is quadratic).
        let model = RouterAreaModel::input_queued(8, 32);
        let bw = BitsPerCycle::new(512);
        let a5 = model.area(5, 5, bw).value();
        let a10 = model.area(10, 10, bw).value();
        assert!(a10 > 2.0 * a5, "a5={a5}, a10={a10}");
    }

    #[test]
    fn router_area_linear_in_buffering() {
        let shallow = RouterAreaModel::input_queued(8, 16);
        let deep = RouterAreaModel::input_queued(8, 32);
        let bw = BitsPerCycle::new(512);
        assert!(deep.area(5, 5, bw).value() > shallow.area(5, 5, bw).value());
    }

    #[test]
    fn paper_router_is_small_fraction_of_knc_tile() {
        // A radix-5 router with 8 VCs × 32-flit buffers at 512 bits/cycle
        // should be a single-digit percentage of a 35 MGE KNC tile.
        let model = RouterAreaModel::input_queued(8, 32);
        let a = model.area(5, 5, BitsPerCycle::new(512)).value();
        let tile = 35.0e6;
        let frac = a / tile;
        assert!(frac > 0.005 && frac < 0.2, "router/tile fraction {frac}");
    }
}
