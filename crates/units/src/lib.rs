//! Physical-quantity newtypes and technology-function bundles for NoC cost
//! modeling.
//!
//! The prediction model of the Sparse Hamming Graph paper (Table II) is
//! parameterized by a set of *technology functions* such as
//! `f_GE→mm²` (silicon area of a number of gate equivalents) or
//! `f_mm→s` (signal delay along a buffered wire). This crate provides
//!
//! * strongly-typed scalar quantities ([`Mm`], [`Mm2`], [`Watts`],
//!   [`Seconds`], [`GateEquivalents`], …) so that, e.g., an area can never be
//!   accidentally passed where a length is expected, and
//! * the technology/transport parameter bundles ([`Technology`],
//!   [`Transport`], [`RouterAreaModel`]) that implement the paper's
//!   functions on top of those quantities.
//!
//! # Examples
//!
//! ```
//! use shg_units::{GateEquivalents, Mm2, Technology};
//!
//! let tech = Technology::example_22nm();
//! let area: Mm2 = tech.ge_to_mm2(GateEquivalents::mega(35.0));
//! assert!(area.value() > 5.0 && area.value() < 20.0);
//! ```

mod layers;
mod scalar;
mod transport;

pub use layers::{LayerStack, MetalLayer};
pub use scalar::{
    AspectRatio, BitsPerCycle, Cycles, GateEquivalents, Hertz, Mm, Mm2, Seconds, Watts, Wires,
};
pub use transport::{RouterAreaModel, Transport};

use serde::{Deserialize, Serialize};

/// A bundle of technology-node parameters implementing the technology
/// functions of Table II of the paper.
///
/// All functions are linear in their argument with coefficients captured by
/// this struct; this keeps the bundle serializable and deterministic while
/// matching the shapes the paper describes (area and power are linear in GE
/// count / mm², wire delay is linear in distance for buffered wires).
///
/// # Examples
///
/// ```
/// use shg_units::{Mm, Technology};
///
/// let tech = Technology::example_22nm();
/// // A signal needs ~150 ps to cross 1 mm of buffered wire at 22 nm.
/// let d = tech.wire_delay(Mm::new(1.0));
/// assert!((d.value() - 150e-12).abs() < 1e-13);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    /// Human-readable node name, e.g. `"22nm"`.
    pub name: String,
    /// Placed silicon area per gate equivalent, in mm²/GE
    /// (includes placement utilization overhead).
    pub mm2_per_ge: f64,
    /// Metal layers available for inter-tile signal routing.
    pub layers: LayerStack,
    /// Power density of logic-dominated area, in W/mm² (`f^L_mm²→W`).
    pub logic_watts_per_mm2: f64,
    /// Power density of wire-dominated area, in W/mm² (`f^W_mm²→W`).
    pub wire_watts_per_mm2: f64,
    /// Signal propagation delay along a buffered wire, in s/mm (`f_mm→s`).
    pub wire_seconds_per_mm: f64,
}

impl Technology {
    /// `f_GE→mm²`: silicon area needed to synthesize `ge` gate equivalents.
    #[must_use]
    pub fn ge_to_mm2(&self, ge: GateEquivalents) -> Mm2 {
        Mm2::new(ge.value() * self.mm2_per_ge)
    }

    /// Inverse of [`Technology::ge_to_mm2`]: how many gate equivalents fit
    /// into `area`.
    #[must_use]
    pub fn mm2_to_ge(&self, area: Mm2) -> GateEquivalents {
        GateEquivalents::new(area.value() / self.mm2_per_ge)
    }

    /// `f^H_wires→mm`: channel width needed for `x` parallel horizontal wires.
    #[must_use]
    pub fn h_wires_to_mm(&self, x: Wires) -> Mm {
        self.layers.h_wires_to_mm(x)
    }

    /// `f^V_wires→mm`: channel width needed for `x` parallel vertical wires.
    #[must_use]
    pub fn v_wires_to_mm(&self, x: Wires) -> Mm {
        self.layers.v_wires_to_mm(x)
    }

    /// `f^L_mm²→W`: approximate power consumption of logic-dominated area.
    #[must_use]
    pub fn logic_power(&self, area: Mm2) -> Watts {
        Watts::new(area.value() * self.logic_watts_per_mm2)
    }

    /// `f^W_mm²→W`: approximate power consumption of wire-dominated area.
    #[must_use]
    pub fn wire_power(&self, area: Mm2) -> Watts {
        Watts::new(area.value() * self.wire_watts_per_mm2)
    }

    /// `f_mm→s`: time for a signal to travel `distance` along a buffered wire.
    #[must_use]
    pub fn wire_delay(&self, distance: Mm) -> Seconds {
        Seconds::new(distance.value() * self.wire_seconds_per_mm)
    }

    /// Latency, in whole clock cycles (minimum 1), of a wire of length
    /// `distance` clocked at `frequency`.
    ///
    /// Whenever a link is too long to be operated at the target clock
    /// frequency, the paper inserts as many pipeline registers as necessary;
    /// the resulting latency is the wire delay expressed in (rounded-up)
    /// cycles.
    #[must_use]
    pub fn wire_latency(&self, distance: Mm, frequency: Hertz) -> Cycles {
        let cycles = self.wire_delay(distance).value() * frequency.value();
        Cycles::new((cycles.ceil() as u64).max(1))
    }

    /// A plausible 22 nm bulk technology bundle.
    ///
    /// Numbers are public-ballpark figures chosen so that a KNC-like chip
    /// (64 tiles × 35 MGE) lands near the published ~700 mm² die size:
    /// 0.3 µm²/GE placed density; 3 horizontal + 2 vertical *global*
    /// signal layers with 160–400 nm pitches (inter-tile links route on
    /// the coarse upper metals, not the dense local layers); 150 ps/mm
    /// buffered-wire delay; 0.32 W/mm² logic and 0.06 W/mm² wire power
    /// density.
    #[must_use]
    pub fn example_22nm() -> Self {
        Self {
            name: "22nm".to_owned(),
            mm2_per_ge: 0.3e-6,
            layers: LayerStack::new(
                vec![
                    MetalLayer::with_pitch_nm(160.0),
                    MetalLayer::with_pitch_nm(200.0),
                    MetalLayer::with_pitch_nm(400.0),
                ],
                vec![
                    MetalLayer::with_pitch_nm(180.0),
                    MetalLayer::with_pitch_nm(360.0),
                ],
            ),
            logic_watts_per_mm2: 0.32,
            wire_watts_per_mm2: 0.06,
            wire_seconds_per_mm: 150e-12,
        }
    }

    /// The 10-metal-layer example from Section IV-B.1 of the paper:
    /// 3 horizontal layers with 40/50/60 nm pitch and 2 vertical layers with
    /// 45/55 nm pitch. Useful for validating the wire-channel math against
    /// the formulas printed in the paper.
    #[must_use]
    pub fn paper_example() -> Self {
        Self {
            name: "paper-example".to_owned(),
            mm2_per_ge: 0.2e-6,
            layers: LayerStack::new(
                vec![
                    MetalLayer::with_pitch_nm(40.0),
                    MetalLayer::with_pitch_nm(50.0),
                    MetalLayer::with_pitch_nm(60.0),
                ],
                vec![
                    MetalLayer::with_pitch_nm(45.0),
                    MetalLayer::with_pitch_nm(55.0),
                ],
            ),
            logic_watts_per_mm2: 0.32,
            wire_watts_per_mm2: 0.11,
            wire_seconds_per_mm: 150e-12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ge_to_mm2_roundtrip() {
        let tech = Technology::example_22nm();
        let ge = GateEquivalents::mega(35.0);
        let back = tech.mm2_to_ge(tech.ge_to_mm2(ge));
        assert!((back.value() - ge.value()).abs() < 1e-3);
    }

    #[test]
    fn paper_example_wire_channel_matches_formula() {
        // Paper: f^H_wires→mm(x) = x·1e-6 / (1/40 + 1/50 + 1/60)
        let tech = Technology::paper_example();
        let x = 1000;
        let expect = x as f64 * 1e-6 / (1.0 / 40.0 + 1.0 / 50.0 + 1.0 / 60.0);
        let got = tech.h_wires_to_mm(Wires::new(x)).value();
        assert!((got - expect).abs() < 1e-12, "got {got}, expected {expect}");
        let expect_v = x as f64 * 1e-6 / (1.0 / 45.0 + 1.0 / 55.0);
        let got_v = tech.v_wires_to_mm(Wires::new(x)).value();
        assert!((got_v - expect_v).abs() < 1e-12);
    }

    #[test]
    fn knc_like_die_area_is_plausible() {
        // 64 tiles × 35 MGE should land in the vicinity of the published
        // ~700 mm² KNC die.
        let tech = Technology::example_22nm();
        let area = tech.ge_to_mm2(GateEquivalents::mega(35.0 * 64.0));
        assert!(area.value() > 400.0 && area.value() < 1000.0, "{area}");
    }

    #[test]
    fn wire_latency_is_at_least_one_cycle() {
        let tech = Technology::example_22nm();
        let lat = tech.wire_latency(Mm::new(0.01), Hertz::giga(1.2));
        assert_eq!(lat.value(), 1);
    }

    #[test]
    fn wire_latency_grows_with_distance() {
        let tech = Technology::example_22nm();
        let f = Hertz::giga(1.2);
        let short = tech.wire_latency(Mm::new(1.0), f);
        let long = tech.wire_latency(Mm::new(30.0), f);
        assert!(long > short);
        // 30 mm × 150 ps/mm = 4.5 ns ≈ 5.4 cycles at 1.2 GHz → 6 cycles.
        assert_eq!(long.value(), 6);
    }

    #[test]
    fn logic_power_scales_linearly() {
        let tech = Technology::example_22nm();
        let p1 = tech.logic_power(Mm2::new(1.0));
        let p2 = tech.logic_power(Mm2::new(2.0));
        assert!((p2.value() - 2.0 * p1.value()).abs() < 1e-12);
    }
}
