//! Scalar quantity newtypes.
//!
//! Each quantity wraps a single number and exists purely to give the type
//! system a handle on the unit. Quantities of the same kind support
//! addition/subtraction and scaling by dimensionless factors; a few
//! physically meaningful cross-type operations ([`Mm`] × [`Mm`] = [`Mm2`])
//! are provided explicitly.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

macro_rules! float_quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value expressed in the quantity's base unit.
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// The zero quantity.
            #[must_use]
            pub const fn zero() -> Self {
                Self(0.0)
            }

            /// Returns the raw value in the quantity's base unit.
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the maximum of two quantities.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the minimum of two quantities.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.6} {}", self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Ratio of two quantities of the same kind (dimensionless).
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

float_quantity!(
    /// A length in millimeters.
    Mm,
    "mm"
);

float_quantity!(
    /// An area in square millimeters.
    Mm2,
    "mm^2"
);

float_quantity!(
    /// A power in watts.
    Watts,
    "W"
);

float_quantity!(
    /// A time in seconds.
    Seconds,
    "s"
);

float_quantity!(
    /// A logic size in gate equivalents (GE; two-input NAND gates).
    GateEquivalents,
    "GE"
);

float_quantity!(
    /// A frequency in hertz.
    Hertz,
    "Hz"
);

impl Mul for Mm {
    type Output = Mm2;
    fn mul(self, rhs: Mm) -> Mm2 {
        Mm2::new(self.value() * rhs.value())
    }
}

impl Div<Mm> for Mm2 {
    type Output = Mm;
    fn div(self, rhs: Mm) -> Mm {
        Mm::new(self.value() / rhs.value())
    }
}

impl GateEquivalents {
    /// Constructs a quantity from a count of mega-gate-equivalents (MGE).
    ///
    /// # Examples
    ///
    /// ```
    /// use shg_units::GateEquivalents;
    /// assert_eq!(GateEquivalents::mega(35.0).value(), 35.0e6);
    /// ```
    #[must_use]
    pub fn mega(mge: f64) -> Self {
        Self::new(mge * 1e6)
    }

    /// This quantity expressed in MGE.
    #[must_use]
    pub fn as_mega(self) -> f64 {
        self.value() / 1e6
    }
}

impl Hertz {
    /// Constructs a frequency from gigahertz.
    #[must_use]
    pub fn giga(ghz: f64) -> Self {
        Self::new(ghz * 1e9)
    }

    /// The clock period corresponding to this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[must_use]
    pub fn period(self) -> Seconds {
        assert!(self.value() > 0.0, "cannot take the period of 0 Hz");
        Seconds::new(1.0 / self.value())
    }
}

/// A count of parallel wires.
///
/// # Examples
///
/// ```
/// use shg_units::Wires;
/// let w = Wires::new(512) + Wires::new(64);
/// assert_eq!(w.value(), 576);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Wires(u64);

impl Wires {
    /// Wraps a wire count.
    #[must_use]
    pub const fn new(count: u64) -> Self {
        Self(count)
    }

    /// The raw wire count.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Wires {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} wires", self.0)
    }
}

impl Add for Wires {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl Mul<u64> for Wires {
    type Output = Self;
    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

/// A link bandwidth in bits per clock cycle.
///
/// # Examples
///
/// ```
/// use shg_units::BitsPerCycle;
/// assert_eq!(BitsPerCycle::new(512).value(), 512);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct BitsPerCycle(u64);

impl BitsPerCycle {
    /// Wraps a bandwidth expressed in bits per cycle.
    #[must_use]
    pub const fn new(bits: u64) -> Self {
        Self(bits)
    }

    /// The raw bandwidth in bits per cycle.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BitsPerCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} bits/cycle", self.0)
    }
}

/// A duration in whole clock cycles.
///
/// # Examples
///
/// ```
/// use shg_units::Cycles;
/// let total = Cycles::new(3) + Cycles::new(4);
/// assert_eq!(total.value(), 7);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Cycles(u64);

impl Cycles {
    /// Wraps a cycle count.
    #[must_use]
    pub const fn new(cycles: u64) -> Self {
        Self(cycles)
    }

    /// One clock cycle.
    #[must_use]
    pub const fn one() -> Self {
        Self(1)
    }

    /// The raw cycle count.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl Add for Cycles {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|c| c.0).sum())
    }
}

/// An aspect ratio (height : width) of a rectangular tile.
///
/// # Examples
///
/// ```
/// use shg_units::AspectRatio;
/// let square = AspectRatio::square();
/// assert_eq!(square.value(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct AspectRatio(f64);

impl AspectRatio {
    /// Wraps a height:width ratio.
    ///
    /// # Panics
    ///
    /// Panics if the ratio is not strictly positive and finite.
    #[must_use]
    pub fn new(ratio: f64) -> Self {
        assert!(
            ratio.is_finite() && ratio > 0.0,
            "aspect ratio must be positive and finite, got {ratio}"
        );
        Self(ratio)
    }

    /// The 1:1 (square) aspect ratio.
    #[must_use]
    pub const fn square() -> Self {
        Self(1.0)
    }

    /// The raw height:width ratio.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }
}

impl Default for AspectRatio {
    fn default() -> Self {
        Self::square()
    }
}

impl fmt::Display for AspectRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:1", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm_times_mm_is_mm2() {
        let area = Mm::new(2.0) * Mm::new(3.0);
        assert_eq!(area, Mm2::new(6.0));
    }

    #[test]
    fn mm2_divided_by_mm_is_mm() {
        let len = Mm2::new(6.0) / Mm::new(3.0);
        assert!((len.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantities_sum() {
        let total: Mm = [Mm::new(1.0), Mm::new(2.5)].into_iter().sum();
        assert!((total.value() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn ratio_of_same_kind_is_dimensionless() {
        let ratio = Watts::new(3.0) / Watts::new(1.5);
        assert!((ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hertz_period() {
        let p = Hertz::giga(1.0).period();
        assert!((p.value() - 1e-9).abs() < 1e-21);
    }

    #[test]
    #[should_panic(expected = "period of 0 Hz")]
    fn zero_frequency_period_panics() {
        let _ = Hertz::new(0.0).period();
    }

    #[test]
    #[should_panic(expected = "aspect ratio must be positive")]
    fn negative_aspect_ratio_panics() {
        let _ = AspectRatio::new(-1.0);
    }

    #[test]
    fn cycles_accumulate() {
        let mut c = Cycles::new(1);
        c += Cycles::new(2);
        assert_eq!(c, Cycles::new(3));
    }

    #[test]
    fn mge_conversion() {
        let ge = GateEquivalents::mega(1.5);
        assert!((ge.as_mega() - 1.5).abs() < 1e-12);
    }
}
