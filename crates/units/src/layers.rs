//! Metal-layer stack abstraction.
//!
//! The paper (Section IV-B.1) represents multiple physical metal layers with
//! different wire pitches as a single abstract layer per routing direction:
//! the channel width needed for `x` wires is `x` divided by the sum of the
//! reciprocal wire pitches of all layers routing in that direction.

use serde::{Deserialize, Serialize};

use crate::scalar::{Mm, Wires};

/// A single metal layer available for signal routing.
///
/// # Examples
///
/// ```
/// use shg_units::MetalLayer;
/// let m4 = MetalLayer::with_pitch_nm(80.0);
/// assert!((m4.pitch_nm() - 80.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct MetalLayer {
    pitch_nm: f64,
}

impl MetalLayer {
    /// Creates a layer with the given wire pitch in nanometers.
    ///
    /// # Panics
    ///
    /// Panics if the pitch is not strictly positive and finite.
    #[must_use]
    pub fn with_pitch_nm(pitch_nm: f64) -> Self {
        assert!(
            pitch_nm.is_finite() && pitch_nm > 0.0,
            "wire pitch must be positive and finite, got {pitch_nm}"
        );
        Self { pitch_nm }
    }

    /// The wire pitch of this layer in nanometers.
    #[must_use]
    pub fn pitch_nm(&self) -> f64 {
        self.pitch_nm
    }

    /// Wires per nanometer of channel width on this layer
    /// (the reciprocal pitch).
    #[must_use]
    pub fn wires_per_nm(&self) -> f64 {
        1.0 / self.pitch_nm
    }
}

/// The set of metal layers available for horizontal and for vertical signal
/// routing.
///
/// Each metal layer has a predefined routing direction (paper assumption,
/// Section II-A), so the stack is split into a horizontal and a vertical
/// group, each reduced to one abstract layer.
///
/// # Examples
///
/// ```
/// use shg_units::{LayerStack, MetalLayer, Wires};
///
/// let stack = LayerStack::new(
///     vec![MetalLayer::with_pitch_nm(40.0), MetalLayer::with_pitch_nm(50.0)],
///     vec![MetalLayer::with_pitch_nm(45.0)],
/// );
/// let width = stack.h_wires_to_mm(Wires::new(900));
/// assert!(width.value() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerStack {
    horizontal: Vec<MetalLayer>,
    vertical: Vec<MetalLayer>,
}

impl LayerStack {
    /// Creates a stack from the layers routing horizontally and vertically.
    ///
    /// # Panics
    ///
    /// Panics if either direction has no layer: the model requires at least
    /// one routing layer per direction.
    #[must_use]
    pub fn new(horizontal: Vec<MetalLayer>, vertical: Vec<MetalLayer>) -> Self {
        assert!(
            !horizontal.is_empty() && !vertical.is_empty(),
            "layer stack needs at least one horizontal and one vertical layer"
        );
        Self {
            horizontal,
            vertical,
        }
    }

    /// The layers used for horizontal routing.
    #[must_use]
    pub fn horizontal(&self) -> &[MetalLayer] {
        &self.horizontal
    }

    /// The layers used for vertical routing.
    #[must_use]
    pub fn vertical(&self) -> &[MetalLayer] {
        &self.vertical
    }

    fn wires_to_mm(layers: &[MetalLayer], x: Wires) -> Mm {
        let wires_per_nm: f64 = layers.iter().map(MetalLayer::wires_per_nm).sum();
        // nm → mm conversion: ×1e-6.
        Mm::new(x.value() as f64 / wires_per_nm * 1e-6)
    }

    /// `f^H_wires→mm`: channel width needed for `x` parallel horizontal
    /// wires.
    #[must_use]
    pub fn h_wires_to_mm(&self, x: Wires) -> Mm {
        Self::wires_to_mm(&self.horizontal, x)
    }

    /// `f^V_wires→mm`: channel width needed for `x` parallel vertical wires.
    #[must_use]
    pub fn v_wires_to_mm(&self, x: Wires) -> Mm {
        Self::wires_to_mm(&self.vertical, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_wires_need_zero_width() {
        let stack = LayerStack::new(
            vec![MetalLayer::with_pitch_nm(40.0)],
            vec![MetalLayer::with_pitch_nm(45.0)],
        );
        assert_eq!(stack.h_wires_to_mm(Wires::new(0)).value(), 0.0);
        assert_eq!(stack.v_wires_to_mm(Wires::new(0)).value(), 0.0);
    }

    #[test]
    fn more_layers_need_less_width() {
        let one = LayerStack::new(
            vec![MetalLayer::with_pitch_nm(40.0)],
            vec![MetalLayer::with_pitch_nm(45.0)],
        );
        let two = LayerStack::new(
            vec![
                MetalLayer::with_pitch_nm(40.0),
                MetalLayer::with_pitch_nm(40.0),
            ],
            vec![MetalLayer::with_pitch_nm(45.0)],
        );
        let x = Wires::new(1000);
        assert!(two.h_wires_to_mm(x) < one.h_wires_to_mm(x));
        // Two identical layers exactly halve the required channel width.
        assert!((two.h_wires_to_mm(x).value() - one.h_wires_to_mm(x).value() / 2.0).abs() < 1e-15);
    }

    #[test]
    fn single_layer_width_is_pitch_times_count() {
        let stack = LayerStack::new(
            vec![MetalLayer::with_pitch_nm(100.0)],
            vec![MetalLayer::with_pitch_nm(100.0)],
        );
        // 10 wires at 100 nm pitch = 1000 nm = 1e-3 mm.
        let w = stack.h_wires_to_mm(Wires::new(10));
        assert!((w.value() - 1e-3).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "at least one horizontal and one vertical")]
    fn empty_direction_panics() {
        let _ = LayerStack::new(vec![], vec![MetalLayer::with_pitch_nm(45.0)]);
    }

    #[test]
    #[should_panic(expected = "wire pitch must be positive")]
    fn zero_pitch_panics() {
        let _ = MetalLayer::with_pitch_nm(0.0);
    }
}
