//! Property tests: the quantity newtypes obey the expected algebraic laws
//! and the technology functions are monotone.

use proptest::prelude::*;

use shg_units::{
    BitsPerCycle, GateEquivalents, Hertz, LayerStack, MetalLayer, Mm, Mm2, RouterAreaModel,
    Technology, Transport, Watts, Wires,
};

fn finite() -> impl Strategy<Value = f64> {
    (0.0f64..1e6).prop_map(|x| x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn addition_is_commutative(a in finite(), b in finite()) {
        prop_assert_eq!(Mm::new(a) + Mm::new(b), Mm::new(b) + Mm::new(a));
        prop_assert_eq!(Watts::new(a) + Watts::new(b), Watts::new(b) + Watts::new(a));
    }

    #[test]
    fn scaling_distributes_over_addition(a in finite(), b in finite(), k in 0.0f64..100.0) {
        let left = (Mm2::new(a) + Mm2::new(b)) * k;
        let right = Mm2::new(a) * k + Mm2::new(b) * k;
        prop_assert!((left.value() - right.value()).abs() <= 1e-6 * left.value().abs().max(1.0));
    }

    #[test]
    fn area_factorizes(w in 0.001f64..1e3, h in 0.001f64..1e3) {
        let area = Mm::new(w) * Mm::new(h);
        let back = area / Mm::new(w);
        prop_assert!((back.value() - h).abs() <= 1e-9 * h.max(1.0));
    }

    #[test]
    fn ge_to_mm2_is_monotone(a in finite(), b in finite()) {
        let tech = Technology::example_22nm();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            tech.ge_to_mm2(GateEquivalents::new(lo)) <= tech.ge_to_mm2(GateEquivalents::new(hi))
        );
    }

    #[test]
    fn wire_channel_width_is_additive(x in 0u64..100_000, y in 0u64..100_000) {
        let stack = LayerStack::new(
            vec![MetalLayer::with_pitch_nm(160.0), MetalLayer::with_pitch_nm(400.0)],
            vec![MetalLayer::with_pitch_nm(180.0)],
        );
        let both = stack.h_wires_to_mm(Wires::new(x + y));
        let split = stack.h_wires_to_mm(Wires::new(x)) + stack.h_wires_to_mm(Wires::new(y));
        prop_assert!((both.value() - split.value()).abs() <= 1e-9 * both.value().max(1.0));
    }

    #[test]
    fn wire_latency_is_monotone_in_distance(a in 0.0f64..500.0, b in 0.0f64..500.0) {
        let tech = Technology::example_22nm();
        let f = Hertz::giga(1.2);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(tech.wire_latency(Mm::new(lo), f) <= tech.wire_latency(Mm::new(hi), f));
    }

    #[test]
    fn transport_wires_monotone_in_bandwidth(a in 0u64..4096, b in 0u64..4096) {
        let axi = Transport::axi_like();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(axi.bw_to_wires(BitsPerCycle::new(lo)) <= axi.bw_to_wires(BitsPerCycle::new(hi)));
    }

    #[test]
    fn router_area_monotone_in_ports(m in 1u32..20, s in 1u32..20) {
        let model = RouterAreaModel::input_queued(8, 32);
        let bw = BitsPerCycle::new(512);
        let base = model.area(m, s, bw);
        let more_in = model.area(m + 1, s, bw);
        let more_out = model.area(m, s + 1, bw);
        prop_assert!(more_in > base);
        prop_assert!(more_out > base);
    }
}
