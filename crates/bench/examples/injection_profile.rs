//! Phase-level cost decomposition of low-rate simulation: how much of
//! a cycle goes to injection (Phase A), delivery (Phase B) and
//! allocation/traversal (Phase C) under each injection and allocation
//! policy, measured directly with [`Network::run_profiled`].
//!
//! This is the profile the allocator work is anchored on: at every
//! useful rate (≥ ~0.002) Phases B/C dominate, and within them the
//! exhaustive port × VC allocator scan was the single largest cost —
//! the regime `AllocPolicy::RequestQueue` attacks.
//!
//! Run with:
//! `cargo run --release -p shg-bench --example injection_profile`

use shg_sim::{AllocPolicy, InjectionPolicy, Network, SimConfig, TrafficPattern};
use shg_topology::{generators, routing, Grid};
use shg_units::Cycles;

fn main() {
    let mesh = generators::mesh(Grid::new(16, 16));
    let routes = routing::default_routes(&mesh).expect("mesh routes");
    let latencies = vec![Cycles::one(); mesh.num_links()];
    let config = |injection: InjectionPolicy, alloc: AllocPolicy| SimConfig {
        warmup: 500,
        measure: 2_000,
        drain_limit: 6_000,
        injection,
        alloc,
        ..SimConfig::default()
    };
    // The default pairing, the two exhaustive references, and the
    // legacy shared stream — enough to read off each policy's phase.
    let policies = [
        (InjectionPolicy::EventDriven, AllocPolicy::RequestQueue),
        (InjectionPolicy::EventDriven, AllocPolicy::FullScan),
        (InjectionPolicy::PerCycleScan, AllocPolicy::RequestQueue),
        (InjectionPolicy::SharedScan, AllocPolicy::RequestQueue),
    ];
    println!(
        "{:<16} {:<15} {:>7} {:>9} {:>9} {:>9} {:>10} {:>8}",
        "Injection", "Allocation", "Rate", "A[us/cy]", "B[us/cy]", "C[us/cy]", "Wall[ms]", "Cycles"
    );
    for rate in [0.0f64, 0.002, 0.005, 0.02] {
        for (injection, alloc) in policies {
            let mut network = Network::new(&mesh, &routes, &latencies, config(injection, alloc));
            let start = std::time::Instant::now();
            let (outcome, profile) = network.run_profiled(rate, TrafficPattern::UniformRandom);
            let wall = start.elapsed().as_secs_f64();
            let per_cycle = |d: std::time::Duration| d.as_secs_f64() * 1e6 / outcome.cycles as f64;
            println!(
                "{:<16} {:<15} {:>7} {:>9.3} {:>9.3} {:>9.3} {:>10.2} {:>8}",
                injection.to_string(),
                alloc.to_string(),
                rate,
                per_cycle(profile.injection),
                per_cycle(profile.delivery),
                per_cycle(profile.allocation),
                wall * 1e3,
                outcome.cycles,
            );
        }
        println!();
    }
}
