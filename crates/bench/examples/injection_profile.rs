//! Phase-level cost decomposition of low-rate simulation: how much of
//! a cycle goes to injection (Phase A) vs. arrivals/allocation (Phases
//! B/C) under each injection policy.
//!
//! Run with:
//! `cargo run --release -p shg-bench --example injection_profile`

use std::time::Instant;

use shg_sim::{InjectionPolicy, Network, SimConfig, TrafficPattern};
use shg_topology::{generators, routing, Grid};
use shg_units::Cycles;

fn main() {
    let mesh = generators::mesh(Grid::new(16, 16));
    let routes = routing::default_routes(&mesh).expect("mesh routes");
    let latencies = vec![Cycles::one(); mesh.num_links()];
    let config = |injection: InjectionPolicy| SimConfig {
        warmup: 500,
        measure: 2_000,
        drain_limit: 6_000,
        injection,
        ..SimConfig::default()
    };
    println!(
        "{:<16} {:>8} {:>12} {:>12} {:>10}",
        "Policy", "Rate", "Wall[ms]", "us/cycle", "Cycles"
    );
    for rate in [0.0f64, 0.002, 0.005, 0.02] {
        for injection in [
            InjectionPolicy::EventDriven,
            InjectionPolicy::PerCycleScan,
            InjectionPolicy::SharedScan,
        ] {
            let mut network = Network::new(&mesh, &routes, &latencies, config(injection));
            let start = Instant::now();
            let outcome = network.run(rate, TrafficPattern::UniformRandom);
            let wall = start.elapsed().as_secs_f64();
            println!(
                "{:<16} {:>8} {:>12.2} {:>12.2} {:>10}",
                injection.to_string(),
                rate,
                wall * 1e3,
                wall * 1e6 / outcome.cycles as f64,
                outcome.cycles,
            );
        }
    }
}
