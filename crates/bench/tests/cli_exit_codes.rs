//! Regression tests for the harness binaries' CLI error convention:
//! user-input mistakes (unknown flags' values, malformed numbers,
//! conflicting modes) must exit with code 2 and a one-line `error:` +
//! `--help` pointer on stderr — never a panic with a backtrace — while
//! `--help` itself exits 0 with the usage text on stdout.

use std::process::{Command, Output};

fn sweep_worker(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sweep_worker"))
        .args(args)
        .output()
        .expect("spawn sweep_worker")
}

fn sweep_merge(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sweep_merge"))
        .args(args)
        .output()
        .expect("spawn sweep_merge")
}

fn shg_coord(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_shg_coord"))
        .args(args)
        .output()
        .expect("spawn shg_coord")
}

fn load_curve(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_load_curve"))
        .args(args)
        .output()
        .expect("spawn load_curve")
}

/// Asserts the usage-error contract: exit code 2, an `error:` line and
/// the `--help` pointer on stderr, no panic backtrace anywhere.
fn assert_usage_error(output: &Output, needle: &str) {
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(
        output.status.code(),
        Some(2),
        "expected exit 2, got {:?}; stderr: {stderr}",
        output.status.code()
    );
    assert!(
        stderr.contains("error:"),
        "stderr should carry an error: line, got: {stderr}"
    );
    assert!(
        stderr.contains("run with --help for usage"),
        "stderr should point at --help, got: {stderr}"
    );
    assert!(
        stderr.contains(needle),
        "stderr should mention '{needle}', got: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "user-input errors must not panic, got: {stderr}"
    );
}

#[test]
fn help_exits_zero_with_usage() {
    for output in [
        sweep_worker(&["--help"]),
        sweep_merge(&["--help"]),
        shg_coord(&["--help"]),
    ] {
        assert_eq!(output.status.code(), Some(0));
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(stdout.contains("Usage:"), "got: {stdout}");
    }
}

#[test]
fn unknown_scenario_is_a_usage_error() {
    let output = sweep_worker(&["--fast", "--scenario", "z", "--single-shot", "/dev/null"]);
    assert_usage_error(&output, "scenario");
}

#[test]
fn malformed_rate_points_is_a_usage_error() {
    let output = sweep_worker(&[
        "--fast",
        "--rate-points",
        "lots",
        "--single-shot",
        "/dev/null",
    ]);
    assert_usage_error(&output, "rate-points");
}

#[test]
fn non_positive_add_rates_is_a_usage_error() {
    let output = sweep_worker(&[
        "--fast",
        "--add-rates",
        "0.2,-0.1",
        "--single-shot",
        "/dev/null",
    ]);
    assert_usage_error(&output, "add-rates");
}

#[test]
fn unknown_alloc_policy_is_a_usage_error() {
    let output = sweep_worker(&["--fast", "--alloc", "greedy", "--single-shot", "/dev/null"]);
    assert_usage_error(&output, "alloc");
}

#[test]
fn unknown_backend_is_a_usage_error() {
    let output = sweep_worker(&[
        "--fast",
        "--backend",
        "quantum",
        "--single-shot",
        "/dev/null",
    ]);
    assert_usage_error(&output, "backend");
}

#[test]
fn malformed_lanes_is_a_usage_error() {
    let output = sweep_worker(&["--fast", "--lanes", "many", "--single-shot", "/dev/null"]);
    assert_usage_error(&output, "lanes");
}

#[test]
fn zero_based_shard_is_a_usage_error() {
    let output = sweep_worker(&["--fast", "--shard", "0/3", "--out", "/dev/null"]);
    assert_usage_error(&output, "shard");
}

#[test]
fn out_and_resume_conflict_is_a_usage_error() {
    let output = sweep_worker(&["--fast", "--out", "a.jsonl", "--resume", "b.jsonl"]);
    assert_usage_error(&output, "mutually exclusive");
}

#[test]
fn unknown_topology_spec_is_a_usage_error() {
    let output = load_curve(&["--topology", "moebius"]);
    assert_usage_error(&output, "moebius");
}

#[test]
fn malformed_topology_database_is_a_usage_error() {
    let output = load_curve(&["--topology", "db:widget/d/8x8/mesh"]);
    assert_usage_error(&output, "unknown statement");
}

#[test]
fn uninstantiable_topology_database_is_a_usage_error() {
    // 3×3 admits no hypercube: a DB validation failure, not a panic.
    let output = load_curve(&["--topology", "db:die/d/3x3/hypercube"]);
    assert_usage_error(&output, "hypercube");
}

#[test]
fn worker_rejects_a_malformed_db_param() {
    let output = sweep_worker(&["--fast", "--db", "die/d/8x8", "--single-shot", "/dev/null"]);
    assert_usage_error(&output, "db");
}

#[test]
fn malformed_fault_cycle_is_a_usage_error() {
    let output = sweep_worker(&[
        "--fast",
        "--faults",
        "soon:link:0-1",
        "--single-shot",
        "/dev/null",
    ]);
    assert_usage_error(&output, "bad fault cycle");
}

#[test]
fn out_of_range_fault_router_is_a_usage_error() {
    // Parses fine; dies at annotation when checked against the
    // scenario's concrete 64-tile topologies.
    let output = sweep_worker(&[
        "--fast",
        "--faults",
        "100:router:9999",
        "--single-shot",
        "/dev/null",
    ]);
    assert_usage_error(&output, "out of range");
}

#[test]
fn duplicate_fault_kill_is_a_usage_error() {
    // The two events name the same canonical link from both ends.
    let output = sweep_worker(&[
        "--fast",
        "--faults",
        "100:link:0-1,200:link:1-0",
        "--single-shot",
        "/dev/null",
    ]);
    assert_usage_error(&output, "duplicate kill");
}

#[test]
fn load_curve_rejects_an_absent_fault_link() {
    // Tiles 0 and 2 both exist but share no link on the scenario mesh.
    let output = load_curve(&["--topology", "mesh", "--faults", "100:link:0-2"]);
    assert_usage_error(&output, "no link 0-2");
}

#[test]
fn coordinator_validates_faults_before_spawning_the_fleet() {
    let output = shg_coord(&["--spawn-workers", "2", "--fast", "--faults", "100:nuke:3"]);
    assert_usage_error(&output, "bad fault event");
}

#[test]
fn resilience_rejects_an_out_of_range_kill_fraction() {
    let output = Command::new(env!("CARGO_BIN_EXE_resilience"))
        .args(["--fractions", "0.5,1.5"])
        .output()
        .expect("spawn resilience");
    assert_usage_error(&output, "fraction");
}

#[test]
fn merge_without_journals_is_a_usage_error() {
    let output = sweep_merge(&[]);
    assert_usage_error(&output, "no journals given");
}

#[test]
fn merge_of_a_missing_journal_is_a_usage_error() {
    let output = sweep_merge(&["/nonexistent/journal.jsonl"]);
    assert_usage_error(&output, "/nonexistent/journal.jsonl");
}

#[test]
fn coordinator_without_a_fleet_mode_is_a_usage_error() {
    let output = shg_coord(&[]);
    assert_usage_error(&output, "--spawn-workers");
}

#[test]
fn coordinator_rejects_a_malformed_kill_spec() {
    let output = shg_coord(&["--spawn-workers", "1", "--kill-worker", "0:oops"]);
    assert_usage_error(&output, "--kill-worker");
}
