//! Sweep-layer equivalence of the topology database: a `db` request
//! whose database reduces to a legacy generator produces the same plan
//! fingerprint, the same sweep bytes and the same cell-cache entries as
//! the legacy topology under the same case name — and a heterogeneous
//! two-die database sweeps byte-deterministically through the same
//! machinery.

use shg_bench::sweep::{annotated_experiment, cache_summary, request_setup, TopologyCache};
use shg_sim::CellCache;
use shg_topology::{generators, Grid, Topology};

/// Request params for scenario a's fast one-point sweep, optionally
/// carrying a `db` value in wire form.
fn params(db: Option<&str>) -> Vec<(String, String)> {
    let mut params = vec![
        ("scenario".to_owned(), "a".to_owned()),
        ("fast".to_owned(), "1".to_owned()),
        ("rate-points".to_owned(), "1".to_owned()),
    ];
    if let Some(spec) = db {
        params.push(("db".to_owned(), spec.to_owned()));
    }
    params
}

/// A scratch cache directory, wiped at entry so reruns start cold.
fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "shg_expanded_grid_sweep_{}_{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn db_request_matches_the_legacy_mesh_plan_and_bytes() {
    // The database path: die m is scenario a's full 8×8 grid, mesh
    // base — request_setup instantiates it as the single case `db`.
    let setup = request_setup(&params(Some("die/m/8x8/mesh"))).expect("db request");
    let pair = setup.db_topology.as_ref().expect("db topology present");
    assert_eq!(pair.0, "db");
    assert_eq!(pair.1, generators::mesh(Grid::new(8, 8)));
    let mut cache = TopologyCache::new();
    let db_experiment = annotated_experiment(
        &setup.scenario.params,
        &setup.model_options,
        &mut cache,
        std::slice::from_ref(pair),
        setup.spec.clone(),
        setup.route_form,
    )
    .expect("annotates");

    // The legacy path: the same mesh from the legacy constructor,
    // manually case-named `db` so the plans are comparable.
    let legacy_setup = request_setup(&params(None)).expect("legacy request");
    let legacy: Vec<(String, Topology)> = vec![(
        "db".to_owned(),
        generators::mesh(legacy_setup.scenario.params.grid),
    )];
    let legacy_experiment = annotated_experiment(
        &legacy_setup.scenario.params,
        &legacy_setup.model_options,
        &mut cache,
        &legacy,
        legacy_setup.spec.clone(),
        legacy_setup.route_form,
    )
    .expect("annotates");

    // Same plan fingerprint (spec, case names, grids, links, floorplan
    // latencies) — the coordinator's handshake would accept either
    // side — and byte-identical sweep output.
    assert_eq!(
        db_experiment.plan().fingerprint(),
        legacy_experiment.plan().fingerprint()
    );
    assert_eq!(
        db_experiment.run_parallel().to_json(),
        legacy_experiment.run_parallel().to_json()
    );
}

#[test]
fn warm_cache_from_legacy_cells_answers_the_db_request() {
    let dir = scratch_dir("warm");

    // Cold run on the legacy constructor's mesh, case-named `db`.
    let legacy_setup = request_setup(&params(None)).expect("legacy request");
    let legacy: Vec<(String, Topology)> = vec![(
        "db".to_owned(),
        generators::mesh(legacy_setup.scenario.params.grid),
    )];
    let mut cache = TopologyCache::new();
    let mut cold = annotated_experiment(
        &legacy_setup.scenario.params,
        &legacy_setup.model_options,
        &mut cache,
        &legacy,
        legacy_setup.spec.clone(),
        legacy_setup.route_form,
    )
    .expect("annotates");
    cold.set_cache(CellCache::open(&dir).expect("cache opens"));
    let cold_json = cold.run_parallel().to_json();
    let total = cold.plan().num_cells();
    assert_eq!(
        cache_summary(&cold).expect("cache attached"),
        format!("cache: cached=0 simulated={total} total={total}")
    );

    // Warm run through the database path: every cell fingerprint must
    // match the legacy one, so nothing re-simulates.
    let setup = request_setup(&params(Some("die/m/8x8/mesh"))).expect("db request");
    let pair = setup.db_topology.as_ref().expect("db topology present");
    let mut warm = annotated_experiment(
        &setup.scenario.params,
        &setup.model_options,
        &mut cache,
        std::slice::from_ref(pair),
        setup.spec.clone(),
        setup.route_form,
    )
    .expect("annotates");
    warm.set_cache(CellCache::open(&dir).expect("cache reopens"));
    let warm_json = warm.run_parallel().to_json();
    assert_eq!(warm_json, cold_json);
    assert_eq!(
        cache_summary(&warm).expect("cache attached"),
        format!("cache: cached={total} simulated=0 total={total}")
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_die_heterogeneous_sweep_is_byte_deterministic_and_cache_warm() {
    let dir = scratch_dir("two_die");
    // Two 4×3 dies: a mesh compute die and a sparse-Hamming die with a
    // memory region, stitched on every row with 3-cycle seams. (Small
    // dies keep the product's diameter within the simulator's 8 VCs —
    // the generic hop-escalation routing of multi-die topologies needs
    // one VC class per hop.)
    let wire = "die/l/4x3/mesh;die/r/4x3/shg:sc=2;\
                region/r/r0..2/c0..3/memory;boundary/every=1/latency=3";
    let setup = request_setup(&params(Some(wire))).expect("two-die request");
    let pair = setup.db_topology.as_ref().expect("db topology present");
    assert_eq!(pair.1.grid(), Grid::new(4, 6));
    assert_eq!(pair.1.num_dies(), 2);
    assert_eq!(setup.scenario.params.grid, pair.1.grid(), "grid overridden");

    let mut cache = TopologyCache::new();
    let mut first = annotated_experiment(
        &setup.scenario.params,
        &setup.model_options,
        &mut cache,
        std::slice::from_ref(pair),
        setup.spec.clone(),
        setup.route_form,
    )
    .expect("annotates");
    first.set_cache(CellCache::open(&dir).expect("cache opens"));
    let first_json = first.run_parallel().to_json();

    // Identical request, fresh interpretation: byte-identical output,
    // fully answered from the cell cache.
    let setup2 = request_setup(&params(Some(wire))).expect("repeat request");
    let pair2 = setup2.db_topology.as_ref().expect("db topology present");
    let mut second = annotated_experiment(
        &setup2.scenario.params,
        &setup2.model_options,
        &mut cache,
        std::slice::from_ref(pair2),
        setup2.spec.clone(),
        setup2.route_form,
    )
    .expect("annotates");
    second.set_cache(CellCache::open(&dir).expect("cache reopens"));
    let second_json = second.run_parallel().to_json();
    assert_eq!(second_json, first_json);
    let total = second.plan().num_cells();
    assert_eq!(
        cache_summary(&second).expect("cache attached"),
        format!("cache: cached={total} simulated=0 total={total}")
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn request_setup_rejects_bad_databases() {
    let err = request_setup(&params(Some("die/d/8x8/nope"))).expect_err("unknown base");
    assert!(err.contains("db '"), "{err}");
    let err = request_setup(&params(Some("die/d/3x3/hypercube"))).expect_err("grid mismatch");
    assert!(err.contains("db '"), "{err}");
    assert!(err.contains("hypercube") || err.contains("power"), "{err}");
    let err = request_setup(&params(Some("widget/d/8x8/mesh"))).expect_err("unknown statement");
    assert!(err.contains("unknown statement"), "{err}");
}
