//! Criterion bench: floorplan model speed (the paper's claim that the
//! toolchain "works at the speed of high-level models" while estimating
//! low-level details). One full five-step prediction per iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use shg_core::Scenario;
use shg_floorplan::{predict, ModelOptions};
use shg_topology::generators;

fn bench_model(c: &mut Criterion) {
    let scenario = Scenario::knc_a();
    let grid = scenario.params.grid;
    let options = ModelOptions {
        cell_scale: 4.0,
        ..ModelOptions::default()
    };
    let topologies = vec![
        ("mesh", generators::mesh(grid)),
        ("sparse_hamming_a", scenario.shg.build()),
        ("torus", generators::torus(grid)),
        ("flattened_butterfly", generators::flattened_butterfly(grid)),
    ];
    let mut group = c.benchmark_group("floorplan_predict_64t");
    group.sample_size(10);
    for (name, topology) in &topologies {
        group.bench_with_input(BenchmarkId::from_parameter(name), topology, |b, t| {
            b.iter(|| predict(&scenario.params, t, &options));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_model);
criterion_main!(benches);
