//! Criterion bench: routing-table construction per algorithm family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use shg_topology::{generators, routing, Grid};

fn bench_routing(c: &mut Criterion) {
    let grid = Grid::new(8, 8);
    let cases = vec![
        ("mesh_row_column", generators::mesh(grid)),
        (
            "shg_row_column",
            generators::row_column_skip(
                grid,
                &[4].into_iter().collect(),
                &[2, 5].into_iter().collect(),
            )
            .expect("scenario a"),
        ),
        ("torus_dateline", generators::torus(grid)),
        ("ring_dateline", generators::ring(grid)),
        ("hypercube_ecube", generators::hypercube(grid).expect("8x8")),
    ];
    let mut group = c.benchmark_group("routing_tables_64t");
    group.sample_size(20);
    for (name, topology) in &cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), topology, |b, t| {
            b.iter(|| routing::default_routes(t).expect("routes"));
        });
    }
    // SlimNoC needs a 128-tile grid.
    let slim = generators::slim_noc(Grid::new(16, 8)).expect("128 tiles");
    group.bench_function("slimnoc_hop_escalation_128t", |b| {
        b.iter(|| routing::default_routes(&slim).expect("routes"));
    });
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
