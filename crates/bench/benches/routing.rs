//! Criterion bench: routing-table construction per algorithm family,
//! plus the `route_tables` group comparing the dense all-pairs path
//! store against the compact next-hop / hierarchical forms at the
//! sizes where the difference decides feasibility (1k, 4k and 10k
//! tiles). Table sizes are printed to stderr alongside the timings —
//! the dense 4k-tile table is multiple gigabytes, which is why only
//! the compact forms are built above 1k tiles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use shg_topology::routing::RouteForm;
use shg_topology::{generators, routing, Grid, TileId};

fn bench_routing(c: &mut Criterion) {
    let grid = Grid::new(8, 8);
    let cases = vec![
        ("mesh_row_column", generators::mesh(grid)),
        (
            "shg_row_column",
            generators::row_column_skip(
                grid,
                &[4].into_iter().collect(),
                &[2, 5].into_iter().collect(),
            )
            .expect("scenario a"),
        ),
        ("torus_dateline", generators::torus(grid)),
        ("ring_dateline", generators::ring(grid)),
        ("hypercube_ecube", generators::hypercube(grid).expect("8x8")),
    ];
    let mut group = c.benchmark_group("routing_tables_64t");
    group.sample_size(20);
    for (name, topology) in &cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), topology, |b, t| {
            b.iter(|| routing::default_routes(t).expect("routes"));
        });
    }
    // SlimNoC needs a 128-tile grid.
    let slim = generators::slim_noc(Grid::new(16, 8)).expect("128 tiles");
    group.bench_function("slimnoc_hop_escalation_128t", |b| {
        b.iter(|| routing::default_routes(&slim).expect("routes"));
    });
    group.finish();
}

/// The README's 10,240-tile two-die database (64×80 compute die with
/// sparse-Hamming skips next to a 64×80 HBM die, seams every 4 rows).
fn readme_two_die() -> shg_topology::Topology {
    shg_topology::db::TopologyDb::parse(
        "die/compute/64x80/shg:sr=4:sc=2,5;die/hbm/64x80/mesh;\
         region/hbm/r0..64/c0..80/memory/sc=2;boundary/every=4/latency=5",
    )
    .expect("readme db parses")
    .instantiate()
    .expect("readme db instantiates")
}

fn bench_route_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_tables");
    group.sample_size(10);
    // 1k tiles: both forms build; the compact one is the default.
    let mesh_1k = generators::mesh(Grid::new(32, 32));
    for form in [RouteForm::Dense, RouteForm::NextHop] {
        let routes = routing::default_routes_with(&mesh_1k, form).expect("routes");
        eprintln!(
            "[route_tables] mesh 1k {form}: {} table bytes",
            routes.table_bytes()
        );
        group.bench_with_input(BenchmarkId::new("build_mesh_1k", form), &mesh_1k, |b, t| {
            b.iter(|| routing::default_routes_with(t, form).expect("routes"))
        });
    }
    // 4k tiles: compact only — the dense table would be gigabytes.
    let mesh_4k = generators::mesh(Grid::new(64, 64));
    let routes = routing::default_routes_with(&mesh_4k, RouteForm::NextHop).expect("routes");
    eprintln!(
        "[route_tables] mesh 4k next-hop: {} table bytes",
        routes.table_bytes()
    );
    group.bench_with_input(
        BenchmarkId::new("build_mesh_4k", RouteForm::NextHop),
        &mesh_4k,
        |b, t| b.iter(|| routing::default_routes_with(t, RouteForm::NextHop).expect("routes")),
    );
    // 10k tiles: the hierarchical multi-die auto-upgrade on the README
    // database — build time, then per-hop lookup throughput over a
    // strided all-pairs sample.
    let big = readme_two_die();
    let routes = routing::default_routes_with(&big, RouteForm::NextHop).expect("routes");
    eprintln!(
        "[route_tables] readme 10k {}: {} table bytes",
        routes.form(),
        routes.table_bytes()
    );
    group.bench_with_input(
        BenchmarkId::new("build_readme_10k", routes.form()),
        &big,
        |b, t| b.iter(|| routing::default_routes_with(t, RouteForm::NextHop).expect("routes")),
    );
    let n = big.num_tiles();
    group.bench_function("lookup_walk_readme_10k", |b| {
        b.iter(|| {
            let mut hops = 0u64;
            for src in (0..n).step_by(997) {
                for dst in (0..n).step_by(613) {
                    if src == dst {
                        continue;
                    }
                    routes.for_each_hop(TileId::new(src as u32), TileId::new(dst as u32), |_| {
                        hops += 1;
                    });
                }
            }
            hops
        })
    });
    group.finish();
}

criterion_group!(benches, bench_routing, bench_route_tables);
criterion_main!(benches);
