//! Criterion bench: cycle-accurate simulator speed — one short
//! measurement run (warm-up + measure + drain) per iteration, plus the
//! analytic zero-load latency used inside the customization loop.

use criterion::{criterion_group, criterion_main, Criterion};

use shg_sim::{zero_load_latency, Network, SimConfig, TrafficPattern};
use shg_topology::{generators, routing, Grid};
use shg_units::Cycles;

fn bench_simulator(c: &mut Criterion) {
    let grid = Grid::new(8, 8);
    let mesh = generators::mesh(grid);
    let routes = routing::default_routes(&mesh).expect("routes");
    let latencies = vec![Cycles::one(); mesh.num_links()];
    let config = SimConfig {
        warmup: 500,
        measure: 1_000,
        drain_limit: 3_000,
        ..SimConfig::default()
    };
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("mesh_8x8_run_0.1", |b| {
        b.iter(|| {
            let mut network = Network::new(&mesh, &routes, &latencies, config.clone());
            network.run(0.1, TrafficPattern::UniformRandom)
        });
    });
    group.bench_function("mesh_8x8_analytic_zll", |b| {
        b.iter(|| zero_load_latency(&mesh, &routes, &latencies, &config));
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
