//! Criterion bench: Table I compliance analysis speed — the full
//! computed compliance matrix for one grid per iteration.

use criterion::{criterion_group, criterion_main, Criterion};

use shg_core::Scenario;
use shg_topology::compliance;

fn bench_table1(c: &mut Criterion) {
    let scenario = Scenario::knc_a();
    let shg = scenario.shg.build();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("compliance_matrix_8x8", |b| {
        b.iter(|| compliance::table1(scenario.params.grid, Some(&shg)));
    });
    group.bench_function("analyze_sparse_hamming_8x8", |b| {
        b.iter(|| compliance::analyze(&shg));
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
