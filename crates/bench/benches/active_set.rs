//! Criterion bench: the active-set simulator core vs. the seed's
//! exhaustive full scan. The acceptance bar for the refactor: ≥1.5× at
//! low load on a 16×16 mesh zero-load run (in practice the gap is much
//! larger because almost every router is idle almost every cycle).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use shg_sim::{Network, ScanPolicy, SimConfig, TrafficPattern};
use shg_topology::{generators, routing, Grid};
use shg_units::Cycles;

fn bench_active_set(c: &mut Criterion) {
    let mesh = generators::mesh(Grid::new(16, 16));
    let routes = routing::default_routes(&mesh).expect("mesh routes");
    let latencies = vec![Cycles::one(); mesh.num_links()];
    let config = SimConfig {
        warmup: 500,
        measure: 2_000,
        drain_limit: 6_000,
        ..SimConfig::default()
    };
    let mut group = c.benchmark_group("scan_policy_mesh_16x16");
    group.sample_size(10);
    // Zero-load regime (rate 0.005) and a moderate-load point (0.10):
    // the active set wins big at low load and must not lose at load.
    for rate in [0.005f64, 0.10] {
        for (name, policy) in [
            ("active_set", ScanPolicy::ActiveSet),
            ("full_scan", ScanPolicy::FullScan),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, rate),
                &(rate, policy),
                |b, &(rate, policy)| {
                    b.iter(|| {
                        let mut network = Network::new(&mesh, &routes, &latencies, config.clone());
                        network.run_with_policy(rate, TrafficPattern::UniformRandom, policy)
                    });
                },
            );
        }
    }
    group.finish();

    // Print the headline ratio directly so the acceptance criterion is
    // visible without comparing groups by hand.
    let measure = |policy: ScanPolicy| {
        let mut network = Network::new(&mesh, &routes, &latencies, config.clone());
        let start = std::time::Instant::now();
        let outcome = network.run_with_policy(0.005, TrafficPattern::UniformRandom, policy);
        (start.elapsed().as_secs_f64(), outcome)
    };
    let (_, _) = measure(ScanPolicy::ActiveSet); // warm up
    let (active, active_outcome) = measure(ScanPolicy::ActiveSet);
    let (full, full_outcome) = measure(ScanPolicy::FullScan);
    assert_eq!(active_outcome, full_outcome, "policies must agree");
    println!(
        "\nzero-load 16x16 mesh: full scan / active set = {:.2}x (target >= 1.5x)",
        full / active
    );
}

criterion_group!(benches, bench_active_set);
criterion_main!(benches);
