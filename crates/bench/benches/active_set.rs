//! Criterion bench: the sparse schedulers vs. their exhaustive
//! references.
//!
//! * **Scan policy** — the active-set simulator core vs. the seed's
//!   full scan; acceptance bar ≥1.5× at low load on a 16×16 mesh (in
//!   practice much larger: almost every router is idle almost every
//!   cycle).
//! * **Injection policy** — the event-driven injection calendar vs.
//!   the per-cycle countdown scan on the same per-tile streams;
//!   acceptance bar ≥3× on the injection phase at rate ≤ 0.02 with a
//!   16×16 mesh's tile count (whole runs at these rates are dominated
//!   by Phases B/C, identical under both policies — the full-run group
//!   below shows the calendar never loses there either).
//! * **Allocation policy** — request-driven VA/SA vs. the exhaustive
//!   port × VC scan; acceptance bar ≥3× on the allocation phase in the
//!   Phase B/C-bound regime (256 tiles, rate 0.01). The win scales
//!   with router radix: the 16×16 flattened butterfly (the high-radix
//!   shape SlimNoC-style topologies concentrate traffic on) is an
//!   order of magnitude beyond the bar, whole-run.
//! * **Batched lanes** — whole short-cell sweeps through the
//!   struct-of-arrays lane-parallel core (`ExecBackend::Batched`) at
//!   K = 1/4/8 lanes vs. the per-cell reference, single-threaded
//!   (cells-per-core throughput). Short, construction-dominated cells
//!   are the batched core's target regime — the one the auto probe
//!   routes to it; acceptance bar ≥2× at K = 8 on the high-radix
//!   flattened butterfly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use shg_bench::{
    drive_injection_phase, median, profile_allocation_phase, profile_setup_phase, AllocationSample,
    SetupSample,
};
use shg_sim::{
    AllocPolicy, ExecBackend, Experiment, InjectionPolicy, Network, ScanPolicy, SimConfig,
    SweepSpec, TrafficPattern,
};
use shg_topology::{generators, routing, Grid, Topology};
use shg_units::Cycles;

fn bench_active_set(c: &mut Criterion) {
    let mesh = generators::mesh(Grid::new(16, 16));
    let routes = routing::default_routes(&mesh).expect("mesh routes");
    let latencies = vec![Cycles::one(); mesh.num_links()];
    let config = SimConfig {
        warmup: 500,
        measure: 2_000,
        drain_limit: 6_000,
        ..SimConfig::default()
    };
    let mut group = c.benchmark_group("scan_policy_mesh_16x16");
    group.sample_size(10);
    // Zero-load regime (rate 0.005) and a moderate-load point (0.10):
    // the active set wins big at low load and must not lose at load.
    for rate in [0.005f64, 0.10] {
        for (name, policy) in [
            ("active_set", ScanPolicy::ActiveSet),
            ("full_scan", ScanPolicy::FullScan),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, rate),
                &(rate, policy),
                |b, &(rate, policy)| {
                    b.iter(|| {
                        let mut network = Network::new(&mesh, &routes, &latencies, config.clone());
                        network.run_with_policy(rate, TrafficPattern::UniformRandom, policy)
                    });
                },
            );
        }
    }
    group.finish();

    // Print the headline ratio directly so the acceptance criterion is
    // visible without comparing groups by hand.
    let measure = |policy: ScanPolicy| {
        let mut network = Network::new(&mesh, &routes, &latencies, config.clone());
        let start = std::time::Instant::now();
        let outcome = network.run_with_policy(0.005, TrafficPattern::UniformRandom, policy);
        (start.elapsed().as_secs_f64(), outcome)
    };
    let (_, _) = measure(ScanPolicy::ActiveSet); // warm up
    let (active, active_outcome) = measure(ScanPolicy::ActiveSet);
    let (full, full_outcome) = measure(ScanPolicy::FullScan);
    assert_eq!(active_outcome, full_outcome, "policies must agree");
    println!(
        "\nzero-load 16x16 mesh: full scan / active set = {:.2}x (target >= 1.5x)",
        full / active
    );
}

/// Low-rate injection: with the active-set core already skipping idle
/// routers and channels, Phase A's exhaustive per-tile scan is the
/// remaining O(N)-per-cycle cost. The event-driven calendar must beat
/// the scan ≥3× on the injection phase of a 16×16 mesh at rate ≤ 0.02
/// — and stay bit-identical end to end.
fn bench_injection(c: &mut Criterion) {
    let mesh = generators::mesh(Grid::new(16, 16));
    let routes = routing::default_routes(&mesh).expect("mesh routes");
    let latencies = vec![Cycles::one(); mesh.num_links()];
    let grid = mesh.grid();
    let config = |injection: InjectionPolicy| SimConfig {
        warmup: 500,
        measure: 2_000,
        drain_limit: 6_000,
        injection,
        ..SimConfig::default()
    };
    let rate = 0.01f64;
    let packet_prob = rate / f64::from(config(InjectionPolicy::EventDriven).packet_len);
    let cycles = 3_000u64;

    // Phase A in isolation, via the shared driver the A4 ablation and
    // the headline ratio also use. This is the subsystem the
    // acceptance criterion targets — whole-run wall-clock at these
    // rates is dominated by Phases B/C, which are identical (and
    // already active-set-scheduled) under both policies. The
    // bit-identity of whole-run outcomes is enforced by the test
    // suite (`crates/sim/tests/injection_equivalence.rs`).
    let mut group = c.benchmark_group("injection_phase_mesh_16x16");
    group.sample_size(20);
    for (name, injection) in [
        ("event_driven", InjectionPolicy::EventDriven),
        ("per_cycle_scan", InjectionPolicy::PerCycleScan),
        ("shared_scan", InjectionPolicy::SharedScan),
    ] {
        group.bench_with_input(BenchmarkId::new(name, rate), &injection, |b, &injection| {
            b.iter(|| drive_injection_phase(injection, 42, grid, packet_prob, cycles).1);
        });
    }
    group.finish();

    // Whole runs must never lose from the calendar either.
    let mut runs = c.benchmark_group("injection_policy_full_run_mesh_16x16");
    runs.sample_size(10);
    for (name, injection) in [
        ("event_driven", InjectionPolicy::EventDriven),
        ("per_cycle_scan", InjectionPolicy::PerCycleScan),
    ] {
        runs.bench_with_input(BenchmarkId::new(name, rate), &injection, |b, &injection| {
            b.iter(|| {
                let mut network = Network::new(&mesh, &routes, &latencies, config(injection));
                network.run(rate, TrafficPattern::UniformRandom)
            });
        });
    }
    runs.finish();

    // Headline ratio for the acceptance criterion (median of a few
    // alternating runs, so one scheduling hiccup can't skew it).
    let phase_a = |injection: InjectionPolicy| {
        let (elapsed, arrivals) = drive_injection_phase(injection, 42, grid, packet_prob, cycles);
        (elapsed.as_secs_f64(), arrivals)
    };
    let _ = phase_a(InjectionPolicy::EventDriven); // warm up
    let mut ratios = Vec::new();
    for _ in 0..9 {
        let (event, event_arrivals) = phase_a(InjectionPolicy::EventDriven);
        let (scan, scan_arrivals) = phase_a(InjectionPolicy::PerCycleScan);
        assert_eq!(event_arrivals, scan_arrivals, "same streams, same arrivals");
        ratios.push(scan / event);
    }
    ratios.sort_by(f64::total_cmp);
    println!(
        "\nlow-rate injection phase (rate {rate}, 16x16-mesh tiles): \
         per-cycle scan / event-driven = {:.1}x (target >= 3x)",
        ratios[ratios.len() / 2]
    );
}

/// Request-driven allocation: with injection event-driven and the
/// active set already skipping idle routers, Phases B/C dominate every
/// run at rate ≥ ~0.002 — and within Phase C the exhaustive allocator
/// scanned every port × VC of every visited router. The request queue
/// must beat that scan ≥3× on the allocation phase at the profiled
/// regime (256 tiles, rate 0.01) while staying bit-identical.
fn bench_allocation(c: &mut Criterion) {
    let grid = Grid::new(16, 16);
    let cases: Vec<(&str, Topology)> = vec![
        ("mesh", generators::mesh(grid)),
        ("fb", generators::flattened_butterfly(grid)),
    ];
    let config = |alloc: AllocPolicy| SimConfig {
        warmup: 500,
        measure: 2_000,
        drain_limit: 6_000,
        alloc,
        ..SimConfig::default()
    };
    let rate = 0.01f64;

    // Whole runs: the radix-4 mesh gains ~2.5×; the radix-31 flattened
    // butterfly (the concentrated-traffic shape) gains ~15×.
    let mut group = c.benchmark_group("allocation_policy_full_run_256_tiles");
    group.sample_size(10);
    for (case, topology) in &cases {
        let routes = routing::default_routes(topology).expect("routes");
        let latencies = vec![Cycles::one(); topology.num_links()];
        for (name, alloc) in [
            ("request_queue", AllocPolicy::RequestQueue),
            ("full_scan", AllocPolicy::FullScan),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{case}/{name}"), rate),
                &alloc,
                |b, &alloc| {
                    b.iter(|| {
                        let mut network =
                            Network::new(topology, &routes, &latencies, config(alloc));
                        network.run(rate, TrafficPattern::UniformRandom)
                    });
                },
            );
        }
    }
    group.finish();

    // Headline ratios for the acceptance criterion: the allocation
    // phase in isolation (`Network::run_profiled` decomposes per-phase
    // wall time), medians of alternating runs, via the measurement
    // protocol shared with the A5 ablation and the CI perf-smoke gate.
    for (case, topology) in &cases {
        let samples =
            profile_allocation_phase(topology, &config(AllocPolicy::RequestQueue), rate, 9);
        let ratio = median(samples.iter().map(AllocationSample::ratio).collect());
        println!(
            "\nallocation phase, 16x16 {case} (256 tiles, rate {rate}): \
             full scan / request queue = {ratio:.1}x (target >= 3x)"
        );
    }
}

/// Per-cell setup: `Network::new` re-allocates every router's buffers,
/// masks and pipelines for each sweep cell, while `Network::reset`
/// clears only the state the previous cell touched — the lever behind
/// `ExecBackend::Reuse`. Measured at 64/256/1024 tiles on the radix-4
/// mesh and the high-radix flattened butterfly: `construct` is the
/// raw `Network::new`, and `fresh_cell` vs `reuse_cell` are whole
/// short cells (setup + run) so the end-to-end saving is visible too.
fn bench_setup_phase(c: &mut Criterion) {
    let grids = [
        (64usize, Grid::new(8, 8)),
        (256, Grid::new(16, 16)),
        (1024, Grid::new(32, 32)),
    ];
    let config = SimConfig {
        warmup: 100,
        measure: 400,
        drain_limit: 2_000,
        ..SimConfig::default()
    };
    let rate = 0.01f64;
    // Topologies built once and shared by the criterion benches and the
    // headline measurement below (the 32×32 route builds cost seconds).
    let sized_cases: Vec<(usize, Vec<(&str, Topology)>)> = grids
        .into_iter()
        .map(|(tiles, grid)| {
            (
                tiles,
                vec![
                    ("mesh", generators::mesh(grid)),
                    ("fb", generators::flattened_butterfly(grid)),
                ],
            )
        })
        .collect();
    let mut group = c.benchmark_group("setup_phase");
    group.sample_size(10);
    for (tiles, cases) in &sized_cases {
        let tiles = *tiles;
        for (case, topology) in cases {
            let routes = routing::default_routes(topology).expect("routes");
            let latencies = vec![Cycles::one(); topology.num_links()];
            group.bench_function(BenchmarkId::new(format!("{case}/construct"), tiles), |b| {
                b.iter(|| Network::new(topology, &routes, &latencies, config.clone()));
            });
            group.bench_function(BenchmarkId::new(format!("{case}/fresh_cell"), tiles), |b| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let cell = SimConfig {
                        seed,
                        ..config.clone()
                    };
                    Network::new(topology, &routes, &latencies, cell)
                        .run(rate, TrafficPattern::UniformRandom)
                });
            });
            group.bench_function(BenchmarkId::new(format!("{case}/reuse_cell"), tiles), |b| {
                let mut network = Network::new(topology, &routes, &latencies, config.clone());
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    network.reset(seed);
                    network.run(rate, TrafficPattern::UniformRandom)
                });
            });
        }
    }
    group.finish();

    // Headline ratio for the acceptance criterion: pure setup cost —
    // fresh construction vs. reset of a dirtied network — via the
    // protocol shared with the CI perf-smoke `network_reset_vs_rebuild`
    // gate (which rebuilds its own routes; self-containment is the
    // protocol's point).
    for (tiles, cases) in &sized_cases {
        for (case, topology) in cases {
            let samples = profile_setup_phase(topology, &config, rate, 9);
            let ratio = median(samples.iter().map(SetupSample::ratio).collect());
            println!(
                "\nsetup phase, {tiles}-tile {case}: \
                 Network::new / Network::reset = {ratio:.1}x (target >= 2x)"
            );
        }
    }
}

/// Lane-parallel batched core: whole short-cell sweep grids through
/// `ExecBackend::Batched` at K = 1/4/8 lanes vs. the per-cell
/// reference, on a single thread — cells-per-core throughput, the
/// quantity a sharded sweep fleet scales by. The grid uses short,
/// construction-dominated cells: that is the regime the auto probe
/// routes to the batched core (one struct-of-arrays build plus cheap
/// per-lane resets instead of a fresh `Network::new` per cell); long
/// simulation-dominated cells go to the reuse backend instead. Every
/// backend/width is bit-identical — the equivalence suite pins that —
/// so this group is purely about throughput.
fn bench_batched_lanes(c: &mut Criterion) {
    let grids = [(64usize, Grid::new(8, 8)), (256, Grid::new(16, 16))];
    let config = SimConfig {
        warmup: 10,
        measure: 30,
        drain_limit: 120,
        ..SimConfig::default()
    };
    let spec = || {
        SweepSpec::new(config.clone())
            .rates([0.002, 0.004, 0.006, 0.008, 0.01, 0.012])
            .patterns([TrafficPattern::UniformRandom, TrafficPattern::Transpose])
    };
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("thread pool builds");
    let mut group = c.benchmark_group("batched_lanes");
    group.sample_size(10);
    for (tiles, grid) in grids {
        let cases = [
            ("mesh", generators::mesh(grid)),
            ("fb", generators::flattened_butterfly(grid)),
        ];
        for (case, topology) in &cases {
            let experiment = |backend: ExecBackend, lanes: usize| {
                Experiment::new(spec())
                    .with_backend(backend)
                    .with_lanes(lanes)
                    .with_unit_latency_case(*case, topology)
                    .expect("routes build")
            };
            let per_cell = experiment(ExecBackend::PerCell, 1);
            group.bench_function(BenchmarkId::new(format!("{case}/per_cell"), tiles), |b| {
                b.iter(|| per_cell.run_in_pool(&pool));
            });
            for lanes in [1usize, 4, 8] {
                let batched = experiment(ExecBackend::Batched, lanes);
                group.bench_function(
                    BenchmarkId::new(format!("{case}/batched_k{lanes}"), tiles),
                    |b| {
                        b.iter(|| batched.run_in_pool(&pool));
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_active_set,
    bench_injection,
    bench_allocation,
    bench_setup_phase,
    bench_batched_lanes
);
criterion_main!(benches);
