//! Scenario-level sweep support: floorplan-annotated sweep cases with a
//! topology-keyed cache.
//!
//! The sim-level engine ([`shg_sim::sweep`]) shares route tables and
//! latencies across the (rate × pattern) cells of one case. This layer
//! adds the scenario dimension: producing those cases *from the
//! floorplan model* and caching the expensive artifacts — routing
//! tables and floorplan-predicted per-link latencies — keyed by
//! topology structure, so a topology evaluated by several experiment
//! stages (toolchain evaluation, load sweeps, frontier re-checks) pays
//! for prediction exactly once per binary.

use std::collections::HashMap;

use shg_core::Scenario;
use shg_floorplan::{predict, ArchParams, ModelOptions};
use shg_sim::{Experiment, SweepCase, SweepResult, SweepSpec};
use shg_topology::routing::{self, Routes};
use shg_topology::Topology;
use shg_units::Cycles;

/// A structural fingerprint of a topology: grid dimensions, kind and
/// the (canonically ordered) link list, FNV-1a hashed.
#[must_use]
pub fn topology_fingerprint(topology: &Topology) -> u64 {
    fn mix(hash: &mut u64, value: u64) {
        for byte in value.to_le_bytes() {
            *hash ^= u64::from(byte);
            *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    mix(&mut hash, u64::from(topology.rows()));
    mix(&mut hash, u64::from(topology.cols()));
    for byte in topology.kind().to_string().bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for link in topology.links() {
        mix(&mut hash, link.a.index() as u64);
        mix(&mut hash, link.b.index() as u64);
    }
    hash
}

/// Cached per-topology artifacts: the routing table and the floorplan
/// model's per-link latency estimates.
#[derive(Debug, Clone)]
pub struct PreparedCase {
    /// Routing table.
    pub routes: Routes,
    /// Floorplan-predicted per-link latencies.
    pub link_latencies: Vec<Cycles>,
}

/// The cache. Keyed by [`topology_fingerprint`]; hit/miss counters are
/// exposed so binaries can report how much work sharing saved.
#[derive(Debug, Default)]
pub struct TopologyCache {
    entries: HashMap<u64, PreparedCase>,
    hits: u64,
    misses: u64,
}

impl TopologyCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Routes and floorplan latencies for `topology`, computed at most
    /// once per distinct (topology, architecture, model options)
    /// combination — the prediction inputs are part of the key, so one
    /// cache can serve several scenarios without stale hits.
    ///
    /// # Panics
    ///
    /// Panics if no deadlock-free minimal routing applies (all built-in
    /// topologies route).
    pub fn prepare(
        &mut self,
        params: &ArchParams,
        options: &ModelOptions,
        topology: &Topology,
    ) -> PreparedCase {
        let mut key = topology_fingerprint(topology);
        for input in [
            serde_json::to_string(params).expect("params serialize"),
            serde_json::to_string(options).expect("options serialize"),
        ] {
            for byte in input.bytes() {
                key ^= u64::from(byte);
                key = key.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        if let Some(prepared) = self.entries.get(&key) {
            self.hits += 1;
            return prepared.clone();
        }
        self.misses += 1;
        let routes =
            routing::default_routes(topology).unwrap_or_else(|e| panic!("routing {topology}: {e}"));
        let prediction = predict(params, topology, options);
        let prepared = PreparedCase {
            routes,
            link_latencies: prediction.estimates.link_latencies,
        };
        self.entries.insert(key, prepared.clone());
        prepared
    }

    /// `(hits, misses)` so far.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Builds an [`Experiment`] whose cases are the given named topologies,
/// each annotated with floorplan latencies through `cache`.
pub fn annotated_experiment<'a>(
    params: &ArchParams,
    options: &ModelOptions,
    cache: &mut TopologyCache,
    topologies: &'a [(String, Topology)],
    spec: SweepSpec,
) -> Experiment<'a> {
    let mut experiment = Experiment::new(spec);
    for (name, topology) in topologies {
        let prepared = cache.prepare(params, options, topology);
        experiment.push_case(SweepCase::annotated(
            name.clone(),
            topology,
            prepared.routes,
            prepared.link_latencies,
        ));
    }
    experiment
}

/// The standard wide sweep of a scenario: every applicable topology ×
/// all seven traffic patterns × a linear rate grid, floorplan-annotated
/// and run in parallel.
#[must_use]
pub fn scenario_sweep(
    scenario: &Scenario,
    options: &ModelOptions,
    topologies: &[(String, Topology)],
    rate_points: usize,
) -> SweepResult {
    let spec = SweepSpec::new(scenario.sim.clone())
        .linear_rates(rate_points, 1.0)
        .all_patterns()
        .default_hotspot_low_rates();
    let mut cache = TopologyCache::new();
    annotated_experiment(&scenario.params, options, &mut cache, topologies, spec).run_parallel()
}

/// Renders a per-pattern saturation summary of a sweep: one row per
/// case, one column per traffic pattern *actually swept*, entries in
/// percent of injection capacity (`-` where even the lowest swept rate
/// saturates).
#[must_use]
pub fn pattern_saturation_table(result: &SweepResult, slack: f64) -> String {
    let mut cases: Vec<String> = Vec::new();
    // Columns come from the patterns present in the result (first-seen
    // order = spec order), so unswept patterns never render as `-`.
    let mut patterns: Vec<shg_sim::TrafficPattern> = Vec::new();
    for p in &result.points {
        if !cases.contains(&p.case) {
            cases.push(p.case.clone());
        }
        if !patterns.contains(&p.pattern) {
            patterns.push(p.pattern);
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{:<26}", "SatThr[%] by pattern"));
    for pattern in &patterns {
        out.push_str(&format!(" {:>13}", pattern.to_string()));
    }
    out.push('\n');
    out.push_str(&"-".repeat(26 + 14 * patterns.len()));
    out.push('\n');
    for case in &cases {
        out.push_str(&format!("{case:<26}"));
        for &pattern in &patterns {
            match result.saturation_estimate(case, pattern, slack) {
                Some(sat) => out.push_str(&format!(" {:>13.1}", sat * 100.0)),
                None => out.push_str(&format!(" {:>13}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use shg_topology::{generators, Grid};

    #[test]
    fn fingerprint_distinguishes_topologies_and_matches_itself() {
        let grid = Grid::new(4, 4);
        let mesh = generators::mesh(grid);
        let torus = generators::torus(grid);
        assert_eq!(topology_fingerprint(&mesh), topology_fingerprint(&mesh));
        assert_ne!(topology_fingerprint(&mesh), topology_fingerprint(&torus));
        let mesh2 = generators::mesh(Grid::new(4, 5));
        assert_ne!(topology_fingerprint(&mesh), topology_fingerprint(&mesh2));
    }

    #[test]
    fn cache_computes_each_topology_once() {
        let scenario = Scenario::knc_a();
        let options = ModelOptions {
            cell_scale: 6.0,
            ..ModelOptions::default()
        };
        let mesh = generators::mesh(scenario.params.grid);
        let mut cache = TopologyCache::new();
        let a = cache.prepare(&scenario.params, &options, &mesh);
        let b = cache.prepare(&scenario.params, &options, &mesh);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(a.link_latencies, b.link_latencies);
        assert_eq!(a.link_latencies.len(), mesh.num_links());
    }

    #[test]
    fn scenario_sweep_covers_the_full_grid() {
        let mut scenario = Scenario::knc_a();
        // Shrink for test speed.
        scenario.params.grid = Grid::new(4, 4);
        scenario.sim = shg_sim::SimConfig::fast_test();
        let options = ModelOptions {
            cell_scale: 6.0,
            ..ModelOptions::default()
        };
        let topologies = vec![
            ("mesh".to_owned(), generators::mesh(scenario.params.grid)),
            ("torus".to_owned(), generators::torus(scenario.params.grid)),
        ];
        let result = scenario_sweep(&scenario, &options, &topologies, 2);
        // 6 patterns on the 2-point linear grid, plus the hot-spot
        // pattern's 4 extra log-spaced low-end rates, per case.
        assert_eq!(result.points.len(), 2 * (7 * 2 + 4));
        let table = pattern_saturation_table(&result, 0.05);
        assert!(table.contains("mesh"));
        assert!(table.contains("tornado"));
        // The low end gives the hot-spot column a resolved (non `-`)
        // saturation estimate even when the linear grid saturates.
        for case in ["mesh", "torus"] {
            assert!(
                result
                    .saturation_estimate(case, shg_sim::TrafficPattern::Hotspot(20), 0.05)
                    .is_some(),
                "{case}: hot-spot saturation unresolved"
            );
        }
    }
}
