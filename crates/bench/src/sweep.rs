//! Scenario-level sweep support: floorplan-annotated sweep cases with a
//! topology-keyed cache, and the shard-/journal-aware executor every
//! harness binary funnels its sweeps through.
//!
//! The sim-level engine ([`shg_sim::sweep`]) shares route tables and
//! latencies across the (rate × pattern) cells of one case. This layer
//! adds the scenario dimension: producing those cases *from the
//! floorplan model* and caching the expensive artifacts — routing
//! tables and floorplan-predicted per-link latencies — keyed by
//! topology structure, so a topology evaluated by several experiment
//! stages (toolchain evaluation, load sweeps, frontier re-checks) pays
//! for prediction exactly once per binary.
//!
//! [`run_experiment`] is the execution choke point: it reads the
//! standard sharding flags (`--shard i/N`, `--resume <journal>`,
//! `--progress`) plus the incremental-execution flags (`--cache <dir>`
//! for the cross-run cell-result cache, `--backend
//! per-cell|reuse|batched|auto` and `--lanes <K>` for the execution
//! backend) so every simulating binary can run one shard
//! of its grid to a resumable journal — re-simulating only cells no
//! earlier run has cached — without per-binary plumbing.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use shg_core::Scenario;
use shg_floorplan::{predict, ArchParams, ModelOptions};
use shg_sim::sweep::run_journaled_durable;
use shg_sim::{CellCache, ExecBackend, Experiment, ShardSpec, SweepCase, SweepResult, SweepSpec};
use shg_topology::routing::{self, RouteForm, Routes};
use shg_topology::Topology;
use shg_units::Cycles;

use crate::{arg_value, cli_error, has_flag};

/// A structural fingerprint of a topology: grid dimensions, kind and
/// the (canonically ordered) link list, FNV-1a hashed.
#[must_use]
pub fn topology_fingerprint(topology: &Topology) -> u64 {
    fn mix(hash: &mut u64, value: u64) {
        for byte in value.to_le_bytes() {
            *hash ^= u64::from(byte);
            *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    mix(&mut hash, u64::from(topology.rows()));
    mix(&mut hash, u64::from(topology.cols()));
    for byte in topology.kind().to_string().bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for link in topology.links() {
        mix(&mut hash, link.a.index() as u64);
        mix(&mut hash, link.b.index() as u64);
    }
    hash
}

/// Cached per-topology artifacts: the routing table and the floorplan
/// model's per-link latency estimates.
#[derive(Debug, Clone)]
pub struct PreparedCase {
    /// Routing table.
    pub routes: Routes,
    /// Floorplan-predicted per-link latencies.
    pub link_latencies: Vec<Cycles>,
}

/// The cache. Keyed by [`topology_fingerprint`]; hit/miss counters are
/// exposed so binaries can report how much work sharing saved.
#[derive(Debug, Default)]
pub struct TopologyCache {
    entries: HashMap<u64, PreparedCase>,
    hits: u64,
    misses: u64,
}

impl TopologyCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Routes and floorplan latencies for `topology`, computed at most
    /// once per distinct (topology, architecture, model options, route
    /// form) combination — the prediction inputs are part of the key,
    /// so one cache can serve several scenarios without stale hits.
    ///
    /// # Errors
    ///
    /// Returns a description when no deadlock-free minimal routing
    /// applies (all built-in topologies route, but a topology-database
    /// spec can describe a disconnected graph).
    pub fn prepare(
        &mut self,
        params: &ArchParams,
        options: &ModelOptions,
        topology: &Topology,
        form: RouteForm,
    ) -> Result<PreparedCase, String> {
        let mut key = topology_fingerprint(topology);
        for input in [
            serde_json::to_string(params).expect("params serialize"),
            serde_json::to_string(options).expect("options serialize"),
            form.name().to_owned(),
        ] {
            for byte in input.bytes() {
                key ^= u64::from(byte);
                key = key.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        if let Some(prepared) = self.entries.get(&key) {
            self.hits += 1;
            return Ok(prepared.clone());
        }
        self.misses += 1;
        let routes = routing::default_routes_with(topology, form)
            .map_err(|e| format!("routing {topology}: {e}"))?;
        let prediction = predict(params, topology, options);
        let prepared = PreparedCase {
            routes,
            link_latencies: prediction.estimates.link_latencies,
        };
        self.entries.insert(key, prepared.clone());
        Ok(prepared)
    }

    /// `(hits, misses)` so far.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Builds an [`Experiment`] whose cases are the given named topologies,
/// each annotated with floorplan latencies through `cache`, with
/// routing tables stored in `form` (the compact `next-hop` form and
/// the dense reference simulate byte-identically; the form never
/// shows in the plan fingerprint).
///
/// # Errors
///
/// Returns a description naming the offending case when a topology
/// does not route ([`TopologyCache::prepare`]) or when the spec's
/// fault plan references elements a case's topology does not have
/// ([`shg_sim::FaultPlan::validate`] — a link kill must name a link
/// present in *every* swept topology).
pub fn annotated_experiment<'a>(
    params: &ArchParams,
    options: &ModelOptions,
    cache: &mut TopologyCache,
    topologies: &'a [(String, Topology)],
    spec: SweepSpec,
    form: RouteForm,
) -> Result<Experiment<'a>, String> {
    for (name, topology) in topologies {
        spec.config
            .faults
            .validate(topology)
            .map_err(|e| format!("--faults on case '{name}': {e}"))?;
    }
    let mut experiment = Experiment::new(spec);
    for (name, topology) in topologies {
        let prepared = cache
            .prepare(params, options, topology, form)
            .map_err(|e| format!("case '{name}': {e}"))?;
        experiment.push_case(SweepCase::annotated(
            name.clone(),
            topology,
            prepared.routes,
            prepared.link_latencies,
        ));
    }
    Ok(experiment)
}

/// The spec of the standard wide scenario sweep: all seven traffic
/// patterns × `rate_points` linear rates with the default hot-spot low
/// end — shared by `fig6` and `sweep_worker` so a sharded worker's plan
/// fingerprint matches the single-process sweep it will be merged
/// against.
#[must_use]
pub fn scenario_sweep_spec(scenario: &Scenario, rate_points: usize) -> SweepSpec {
    SweepSpec::new(scenario.sim.clone())
        .linear_rates(rate_points, 1.0)
        .all_patterns()
        .default_hotspot_low_rates()
}

/// The plan-shaping parameters of one sweep request, as opaque
/// key-value strings — the coordinator/worker wire format of "which
/// sweep is this". The supported keys are `scenario`, `fast`,
/// `rate-points`, `add-rates`, `alloc`, `routes` (the routing-table
/// form, `dense` or `next-hop`), `db` (a topology database in
/// its one-token wire form, see [`shg_topology::db::TopologyDb::wire`])
/// and `faults` (a fault plan in [`shg_sim::FaultPlan::parse`] wire
/// form, e.g. `drain,2000:link:3-4,2500:router:9`);
/// values are the user's raw flag strings, forwarded **unreformatted**
/// so every process parses the identical text (re-formatting a float on
/// one side would silently change its grid). [`request_setup`] is the
/// one interpreter, shared by `sweep_worker`'s CLI path, its `--serve`
/// mode and `shg_coord`; the sim layer's plan-fingerprint handshake
/// catches any drift.
#[must_use]
pub fn request_params_from_args() -> Vec<(String, String)> {
    let mut params = Vec::new();
    for key in [
        "scenario",
        "rate-points",
        "add-rates",
        "alloc",
        "routes",
        "db",
        "faults",
    ] {
        if let Some(value) = arg_value(&format!("--{key}")) {
            params.push((key.to_owned(), value));
        }
    }
    if has_flag("--fast") {
        params.push(("fast".to_owned(), "1".to_owned()));
    }
    params
}

/// Everything [`request_setup`] derives from a request's params: the
/// (possibly fast-test) scenario, the floorplan model options, and the
/// fully shaped sweep spec.
#[derive(Debug, Clone)]
pub struct RequestSetup {
    /// The scenario, with its simulator config already adjusted for
    /// `fast` and `alloc`.
    pub scenario: Scenario,
    /// Floorplan model options (coarser cells under `fast`).
    pub model_options: ModelOptions,
    /// The rate × pattern grid, extra rates appended.
    pub spec: SweepSpec,
    /// When the request carries a `db` param: the instantiated
    /// expanded-grid topology (case-named `db`), replacing the
    /// scenario's built-in topology set. The scenario's `params.grid`
    /// has already been overridden to match it.
    pub db_topology: Option<(String, Topology)>,
    /// The routing-table form to annotate cases with (default:
    /// [`RouteForm::NextHop`]; `db` topologies may auto-upgrade it to
    /// hierarchical). Dense and next-hop simulate byte-identically, so
    /// the form is not part of the plan fingerprint.
    pub route_form: RouteForm,
}

/// Interprets request params (see [`request_params_from_args`]) into a
/// scenario, model options and sweep spec — the single deterministic
/// mapping every sweep-service process applies, so identical params
/// always produce identical plan fingerprints.
///
/// # Errors
///
/// Returns a usage-style message on an unknown key, an unknown
/// scenario or allocation policy, malformed numbers, or a `db` value
/// that fails to parse or instantiate.
pub fn request_setup(params: &[(String, String)]) -> Result<RequestSetup, String> {
    let mut which = "a".to_owned();
    let mut fast = false;
    let mut rate_points_raw: Option<String> = None;
    let mut add_rates: Option<String> = None;
    let mut alloc: Option<String> = None;
    let mut routes_raw: Option<String> = None;
    let mut db_raw: Option<String> = None;
    let mut faults_raw: Option<String> = None;
    for (key, value) in params {
        match key.as_str() {
            "scenario" => which.clone_from(value),
            "fast" => fast = value == "1",
            "rate-points" => rate_points_raw = Some(value.clone()),
            "add-rates" => add_rates = Some(value.clone()),
            "alloc" => alloc = Some(value.clone()),
            "routes" => routes_raw = Some(value.clone()),
            "db" => db_raw = Some(value.clone()),
            "faults" => faults_raw = Some(value.clone()),
            other => return Err(format!("unknown request param '{other}'")),
        }
    }
    let route_form = match routes_raw {
        Some(name) => RouteForm::parse(&name)
            .ok_or_else(|| format!("unknown route form '{name}' (use dense|next-hop)"))?,
        None => RouteForm::NextHop,
    };
    let mut scenario =
        Scenario::by_name(&which).ok_or_else(|| format!("unknown scenario '{which}'"))?;
    let model_options = ModelOptions {
        cell_scale: if fast { 4.0 } else { 2.0 },
        ..ModelOptions::default()
    };
    if fast {
        scenario.sim = shg_sim::SimConfig::fast_test();
    }
    let db_topology = match db_raw {
        Some(raw) => {
            let topology = shg_topology::db::TopologyDb::parse(&raw)
                .map_err(|e| format!("db '{raw}': {e}"))?
                .instantiate()
                .map_err(|e| format!("db '{raw}': {e}"))?;
            // The floorplan model asserts its parameter grid matches the
            // topology grid; an expanded grid replaces the scenario's.
            scenario.params.grid = topology.grid();
            Some(("db".to_owned(), topology))
        }
        None => None,
    };
    scenario.sim.alloc = match alloc {
        Some(name) => crate::alloc_policy_by_name(&name).ok_or_else(|| {
            format!("unknown alloc policy '{name}' (use request-queue|full-scan)")
        })?,
        None => scenario.sim.alloc,
    };
    // Installed after the `fast` override replaced the whole config;
    // range checks against the concrete topologies happen when the
    // cases are annotated ([`annotated_experiment`]).
    if let Some(spec) = faults_raw {
        scenario.sim.faults =
            shg_sim::FaultPlan::parse(&spec).map_err(|e| format!("faults '{spec}': {e}"))?;
    }
    let rate_points: usize = match rate_points_raw {
        Some(raw) => raw
            .parse()
            .map_err(|e| format!("rate-points '{raw}': {e}"))?,
        None if fast => 10,
        None => 20,
    };
    let mut spec = scenario_sweep_spec(&scenario, rate_points);
    if let Some(extra) = add_rates {
        // Appended after the hot-spot low-end override snapshotted the
        // shared grid: existing cells (including the hot-spot ones)
        // keep their coordinates, the new rates take fresh indices.
        for rate in extra.split(',') {
            let value: f64 = rate
                .trim()
                .parse()
                .map_err(|e| format!("add-rates '{rate}': {e}"))?;
            if !value.is_finite() || value <= 0.0 {
                return Err(format!(
                    "add-rates '{rate}': injection rates must be finite and positive"
                ));
            }
            spec.rates.push(value);
        }
    }
    Ok(RequestSetup {
        scenario,
        model_options,
        spec,
        db_topology,
        route_form,
    })
}

/// The `--routes dense|next-hop` flag (default: the compact next-hop
/// form — bit-identical to dense, a fraction of the memory). An unknown
/// name is a usage error via [`cli_error`].
#[must_use]
pub fn route_form_from_args() -> RouteForm {
    match arg_value("--routes") {
        Some(name) => RouteForm::parse(&name).unwrap_or_else(|| {
            cli_error(format!("unknown --routes '{name}' (use dense|next-hop)"))
        }),
        None => RouteForm::NextHop,
    }
}

/// The standard wide sweep of a scenario: every applicable topology ×
/// all seven traffic patterns × a linear rate grid, floorplan-annotated
/// and run through [`run_experiment`] (so the sharding flags apply).
#[must_use]
pub fn scenario_sweep(
    scenario: &Scenario,
    options: &ModelOptions,
    topologies: &[(String, Topology)],
    rate_points: usize,
    form: RouteForm,
) -> SweepResult {
    let spec = scenario_sweep_spec(scenario, rate_points);
    let mut cache = TopologyCache::new();
    let mut experiment = annotated_experiment(
        &scenario.params,
        options,
        &mut cache,
        topologies,
        spec,
        form,
    )
    .unwrap_or_else(|e| cli_error(e));
    run_experiment(&mut experiment)
}

/// How many sweeps this process has already journaled (each gets a
/// distinct journal path suffix, so multi-sweep binaries like
/// `fig6 --scenario all` don't clobber one journal).
static JOURNALED_SWEEPS: AtomicUsize = AtomicUsize::new(0);

/// The journal path for the `nth` (0-based) sweep of this process:
/// the flag value as-is for the first, `<path>.2`, `<path>.3`, … after.
fn nth_journal_path(path: &str, nth: usize) -> String {
    if nth == 0 {
        path.to_owned()
    } else {
        format!("{path}.{}", nth + 1)
    }
}

/// Parses an execution-backend name (the `--backend` values the
/// harness binaries accept).
#[must_use]
pub fn backend_by_name(name: &str) -> Option<ExecBackend> {
    match name {
        "per-cell" => Some(ExecBackend::PerCell),
        "reuse" => Some(ExecBackend::Reuse),
        "batched" => Some(ExecBackend::Batched),
        "auto" => Some(ExecBackend::Auto),
        _ => None,
    }
}

/// Applies the incremental-execution flags to an experiment:
///
/// * `--cache <dir>` — attach the cross-run [`CellCache`] at `dir`
///   (created if missing): cells any earlier run stored are answered
///   from disk, only new cells simulate.
/// * `--backend per-cell|reuse|batched|auto` — select the
///   [`ExecBackend`] (default: the per-cell reference; `reuse` groups
///   a shard's cells per topology onto one reset-reused `Network`
///   allocation; `batched` steps up to `--lanes` cells of one topology
///   in lockstep through the struct-of-arrays core; `auto` picks per
///   cell group from a timed probe).
/// * `--lanes <K>` — the batch width of the batched/auto backends
///   (default 8; results are identical at every width).
///
/// Shared by [`run_experiment`] and the binaries (e.g. `sweep_worker`)
/// that drive journaled execution themselves.
///
/// An unknown `--backend` name, a non-numeric `--lanes` value and an
/// unusable cache directory are usage errors: reported via
/// [`cli_error`] (exit code 2), never a panic.
pub fn configure_experiment(experiment: &mut Experiment<'_>) {
    if let Some(dir) = arg_value("--cache") {
        let cache =
            CellCache::open(&dir).unwrap_or_else(|e| cli_error(format!("--cache {dir}: {e}")));
        experiment.set_cache(cache);
    }
    if let Some(name) = arg_value("--backend") {
        let backend = backend_by_name(&name).unwrap_or_else(|| {
            cli_error(format!(
                "unknown --backend '{name}' (use per-cell|reuse|batched|auto)"
            ))
        });
        experiment.set_backend(backend);
    }
    if let Some(lanes) = arg_value("--lanes") {
        let lanes: usize = lanes
            .parse()
            .unwrap_or_else(|e| cli_error(format!("--lanes {lanes}: {e}")));
        experiment.set_lanes(lanes);
    }
}

/// One-line cache-effectiveness summary (`cache: cached=… simulated=…
/// total=…`) of an experiment's execution so far, or `None` when no
/// cache is attached. `total` is the number of cells this execution
/// resolved (cached + simulated) — a shard runs a subset of the plan,
/// and a journal resume skips already-journaled cells outside the
/// cache entirely, so the grid size would not add up. Binaries print
/// it so long sweeps — and the CI cache-smoke job — can see exactly
/// how many cells were re-simulated.
///
/// When a non-default backend simulated anything, the per-backend cell
/// split is appended *after* the `total=` field (`backends:
/// batched=… reuse=… per-cell=…`), so consumers matching the original
/// three-field prefix keep working unchanged.
#[must_use]
pub fn cache_summary(experiment: &Experiment<'_>) -> Option<String> {
    experiment.cache().map(|cache| {
        let stats = cache.stats();
        let mut line = format!(
            "cache: cached={} simulated={} total={}",
            stats.cached,
            stats.simulated,
            stats.cached + stats.simulated
        );
        let exec = experiment.exec_stats();
        if exec.batched_cells > 0 || exec.reuse_cells > 0 {
            line.push_str(&format!(
                " backends: batched={} reuse={} per-cell={} peak-lanes={}",
                exec.batched_cells, exec.reuse_cells, exec.per_cell_cells, exec.peak_lanes
            ));
        }
        line
    })
}

/// Runs an experiment under the standard sharding flags; the execution
/// path every simulating harness binary shares.
///
/// * `--shard i/N` — run only the `i`-th of `N` strided shards
///   ([`ShardSpec::parse`], one-based `i`). Tables and saturation
///   estimates then cover just that shard's cells; journal the shard
///   and merge with `sweep_merge` to recover the full result.
/// * `--resume <journal>` — journal completed cells to the given JSONL
///   path, resuming (and validating the plan fingerprint) if the file
///   already has cells from an interrupted run. Each further sweep in
///   the same process appends `.2`, `.3`, … to the path.
/// * `--durable` — `fsync` the journal after its header and after
///   every completed chunk, so a machine crash (not just a process
///   kill) loses at most the in-flight chunk.
/// * `--cache <dir>` / `--backend per-cell|reuse|batched|auto` /
///   `--lanes <K>` — incremental execution (see
///   [`configure_experiment`]).
/// * `--progress` — log `cells done / total` to stderr as chunks
///   complete; with a cache attached, the cached/simulated split is
///   reported alongside.
///
/// Without any of the flags this is exactly
/// [`Experiment::run_parallel`].
///
/// A malformed `--shard`, `--backend` or `--lanes`, an unusable
/// `--cache` directory, and a journal that does not match the
/// experiment (fingerprint, shard or prefix mismatch — the message
/// names the cause) are usage errors: reported via [`cli_error`] (exit
/// code 2), never a panic.
#[must_use]
pub fn run_experiment(experiment: &mut Experiment<'_>) -> SweepResult {
    configure_experiment(experiment);
    let experiment: &Experiment<'_> = experiment;
    let shard = arg_value("--shard").map_or(ShardSpec::SOLO, |text| {
        ShardSpec::parse(&text).unwrap_or_else(|e| cli_error(e))
    });
    let journal = arg_value("--resume");
    let progress = has_flag("--progress");
    let total_cells = experiment.num_points();
    let report = move |done: usize, total: usize| {
        if progress {
            let cache = experiment.cache().map_or(String::new(), |cache| {
                let stats = cache.stats();
                format!(", {} cached / {} simulated", stats.cached, stats.simulated)
            });
            let exec = experiment.exec_stats();
            let lanes = if exec.batched_cells > 0 || exec.lanes_in_flight > 0 {
                format!(", lanes={} peak={}", exec.lanes_in_flight, exec.peak_lanes)
            } else {
                String::new()
            };
            eprintln!(
                "[sweep] {done}/{total} cells done (shard {shard} of {total_cells} total{cache}{lanes})"
            );
        }
    };
    let result = match journal {
        Some(path) => {
            let nth = JOURNALED_SWEEPS.fetch_add(1, Ordering::Relaxed);
            let path = nth_journal_path(&path, nth);
            run_journaled_durable(
                experiment,
                shard,
                &path,
                true,
                has_flag("--durable"),
                report,
            )
            .unwrap_or_else(|e| cli_error(format!("journal {path}: {e}")))
        }
        // `run_parallel` consults the cache through `run_cells`, so the
        // plain path stays correct with `--cache` too.
        None if shard == ShardSpec::SOLO && !progress => experiment.run_parallel(),
        None => {
            let cells = experiment.plan().shard_cells(shard);
            report(0, cells.len());
            let mut done = 0;
            let points = experiment
                .run_cells_chunked(&cells, |chunk, _| {
                    done += chunk.len();
                    report(done, cells.len());
                    Ok::<(), std::convert::Infallible>(())
                })
                .unwrap_or_else(|never| match never {});
            SweepResult { points }
        }
    };
    if let Some(summary) = cache_summary(experiment) {
        eprintln!("[sweep] {summary}");
    }
    result
}

/// Renders a per-pattern saturation summary of a sweep: one row per
/// case, one column per traffic pattern *actually swept*, entries in
/// percent of injection capacity (`-` where even the lowest swept rate
/// saturates).
#[must_use]
pub fn pattern_saturation_table(result: &SweepResult, slack: f64) -> String {
    let mut cases: Vec<String> = Vec::new();
    // Columns come from the patterns present in the result (first-seen
    // order = spec order), so unswept patterns never render as `-`.
    let mut patterns: Vec<shg_sim::TrafficPattern> = Vec::new();
    for p in &result.points {
        if !cases.contains(&p.case) {
            cases.push(p.case.clone());
        }
        if !patterns.contains(&p.pattern) {
            patterns.push(p.pattern);
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{:<26}", "SatThr[%] by pattern"));
    for pattern in &patterns {
        out.push_str(&format!(" {:>13}", pattern.to_string()));
    }
    out.push('\n');
    out.push_str(&"-".repeat(26 + 14 * patterns.len()));
    out.push('\n');
    for case in &cases {
        out.push_str(&format!("{case:<26}"));
        for &pattern in &patterns {
            match result.saturation_estimate(case, pattern, slack) {
                Some(sat) => out.push_str(&format!(" {:>13.1}", sat * 100.0)),
                None => out.push_str(&format!(" {:>13}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use shg_topology::{generators, Grid};

    #[test]
    fn fingerprint_distinguishes_topologies_and_matches_itself() {
        let grid = Grid::new(4, 4);
        let mesh = generators::mesh(grid);
        let torus = generators::torus(grid);
        assert_eq!(topology_fingerprint(&mesh), topology_fingerprint(&mesh));
        assert_ne!(topology_fingerprint(&mesh), topology_fingerprint(&torus));
        let mesh2 = generators::mesh(Grid::new(4, 5));
        assert_ne!(topology_fingerprint(&mesh), topology_fingerprint(&mesh2));
    }

    #[test]
    fn cache_computes_each_topology_once() {
        let scenario = Scenario::knc_a();
        let options = ModelOptions {
            cell_scale: 6.0,
            ..ModelOptions::default()
        };
        let mesh = generators::mesh(scenario.params.grid);
        let mut cache = TopologyCache::new();
        let a = cache
            .prepare(&scenario.params, &options, &mesh, RouteForm::NextHop)
            .expect("mesh routes");
        let b = cache
            .prepare(&scenario.params, &options, &mesh, RouteForm::NextHop)
            .expect("mesh routes");
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(a.link_latencies, b.link_latencies);
        assert_eq!(a.link_latencies.len(), mesh.num_links());
        assert_eq!(a.routes.form(), RouteForm::NextHop);
        // A different form is a different artifact: its own cache slot.
        let dense = cache
            .prepare(&scenario.params, &options, &mesh, RouteForm::Dense)
            .expect("mesh routes");
        assert_eq!(cache.stats(), (1, 2));
        assert_eq!(dense.routes.form(), RouteForm::Dense);
    }

    #[test]
    fn run_experiment_without_flags_is_run_parallel() {
        // The test binary's argv carries none of the sharding flags, so
        // the executor must take the plain path and reproduce the
        // single-shot bytes.
        let mesh = generators::mesh(Grid::new(4, 4));
        let spec = shg_sim::SweepSpec::new(shg_sim::SimConfig::fast_test()).rates([0.05, 0.2]);
        let mut experiment = shg_sim::Experiment::new(spec)
            .with_unit_latency_case("mesh", &mesh)
            .expect("mesh routes");
        let executed = run_experiment(&mut experiment).to_json();
        assert_eq!(executed, experiment.run_parallel().to_json());
        assert!(
            cache_summary(&experiment).is_none(),
            "no --cache flag, no cache"
        );
    }

    #[test]
    fn backend_names_parse() {
        assert_eq!(backend_by_name("per-cell"), Some(ExecBackend::PerCell));
        assert_eq!(backend_by_name("reuse"), Some(ExecBackend::Reuse));
        assert_eq!(backend_by_name("batched"), Some(ExecBackend::Batched));
        assert_eq!(backend_by_name("auto"), Some(ExecBackend::Auto));
        assert_eq!(backend_by_name("other"), None);
    }

    #[test]
    fn journal_paths_of_later_sweeps_get_suffixes() {
        assert_eq!(nth_journal_path("a.jsonl", 0), "a.jsonl");
        assert_eq!(nth_journal_path("a.jsonl", 1), "a.jsonl.2");
        assert_eq!(nth_journal_path("a.jsonl", 2), "a.jsonl.3");
    }

    #[test]
    fn scenario_sweep_covers_the_full_grid() {
        let mut scenario = Scenario::knc_a();
        // Shrink for test speed.
        scenario.params.grid = Grid::new(4, 4);
        scenario.sim = shg_sim::SimConfig::fast_test();
        let options = ModelOptions {
            cell_scale: 6.0,
            ..ModelOptions::default()
        };
        let topologies = vec![
            ("mesh".to_owned(), generators::mesh(scenario.params.grid)),
            ("torus".to_owned(), generators::torus(scenario.params.grid)),
        ];
        let result = scenario_sweep(&scenario, &options, &topologies, 2, RouteForm::NextHop);
        // 6 patterns on the 2-point linear grid, plus the hot-spot
        // pattern's 4 extra log-spaced low-end rates, per case.
        assert_eq!(result.points.len(), 2 * (7 * 2 + 4));
        let table = pattern_saturation_table(&result, 0.05);
        assert!(table.contains("mesh"));
        assert!(table.contains("tornado"));
        // The low end gives the hot-spot column a resolved (non `-`)
        // saturation estimate even when the linear grid saturates.
        for case in ["mesh", "torus"] {
            assert!(
                result
                    .saturation_estimate(case, shg_sim::TrafficPattern::Hotspot(20), 0.05)
                    .is_some(),
                "{case}: hot-spot saturation unresolved"
            );
        }
    }
}
