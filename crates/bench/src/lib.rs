//! Shared helpers for the experiment harness binaries and benches.
//!
//! The binaries in `src/bin/` regenerate the paper's tables and figures
//! (see `DESIGN.md` §3 for the experiment index); the Criterion benches
//! in `benches/` measure the speed claims (the toolchain must run "at the
//! speed of high-level models"). All simulation-grid work goes through
//! the shared sweep engine ([`shg_sim::sweep`] plus the scenario layer
//! in [`sweep`]) instead of per-binary measurement loops.

pub mod sweep;

use rayon::prelude::*;

use shg_core::{Evaluation, Scenario, Toolchain};
use shg_sim::{InjectionPolicy, Injector, TrafficPattern};
use shg_topology::{generators, Grid, TileId, Topology};

/// Drives `cycles` cycles of Phase A (injection) in isolation under
/// uniform-random traffic: the workload the injection benchmarks, the
/// A4 ablation and the headline speedup ratio all share, so they are
/// guaranteed to measure the same thing. Returns the wall time and the
/// number of sampled arrivals (identical across the bit-identical
/// policies).
#[must_use]
pub fn drive_injection_phase(
    injection: InjectionPolicy,
    seed: u64,
    grid: Grid,
    packet_prob: f64,
    cycles: u64,
) -> (std::time::Duration, u64) {
    let mut injector = Injector::new(injection, seed, grid.num_tiles(), packet_prob, cycles);
    let start = std::time::Instant::now();
    let mut arrivals = 0u64;
    for now in 0..cycles {
        injector.fire_at(now, |t, rng| {
            arrivals += u64::from(
                TrafficPattern::UniformRandom
                    .destination(grid, TileId::new(t as u32), rng)
                    .is_some(),
            );
        });
    }
    (start.elapsed(), arrivals)
}

/// All topologies applicable to a scenario's grid, in Fig. 6's order:
/// ring, mesh, torus, folded torus, hypercube (power-of-two grids),
/// SlimNoC (2q² tiles), flattened butterfly, and the scenario's customized
/// sparse Hamming graph.
#[must_use]
pub fn applicable_topologies(scenario: &Scenario) -> Vec<Topology> {
    let grid = scenario.params.grid;
    let mut topologies = vec![
        generators::ring(grid),
        generators::mesh(grid),
        generators::torus(grid),
        generators::folded_torus(grid),
    ];
    if let Ok(hc) = generators::hypercube(grid) {
        topologies.push(hc);
    }
    if let Ok(slim) = generators::slim_noc(grid) {
        topologies.push(slim);
    }
    topologies.push(generators::flattened_butterfly(grid));
    topologies.push(scenario.shg.build());
    topologies
}

/// Like [`applicable_topologies`], labelled with their display names
/// (the form the sweep engine's cases take).
#[must_use]
pub fn named_topologies(scenario: &Scenario) -> Vec<(String, Topology)> {
    applicable_topologies(scenario)
        .into_iter()
        .map(|t| (t.kind().to_string(), t))
        .collect()
}

/// Evaluates all applicable topologies, fanned out on the rayon pool.
///
/// # Panics
///
/// Panics if any evaluation fails (all built-in topologies route).
#[must_use]
pub fn evaluate_all(scenario: &Scenario, toolchain: &Toolchain) -> Vec<Evaluation> {
    let topologies = applicable_topologies(scenario);
    topologies
        .par_iter()
        .map(|topology| {
            toolchain
                .evaluate(&scenario.params, topology)
                .unwrap_or_else(|e| panic!("evaluating {topology}: {e}"))
        })
        .collect()
}

/// Parses `--scenario <name>` style flags out of `std::env::args`.
#[must_use]
pub fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// `true` if a bare flag (e.g. `--fast`) is present.
#[must_use]
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_a_has_seven_topologies() {
        // 64 tiles: no SlimNoC.
        let topologies = applicable_topologies(&Scenario::knc_a());
        assert_eq!(topologies.len(), 7);
    }

    #[test]
    fn scenario_c_has_eight_topologies() {
        // 128 tiles: SlimNoC applies.
        let topologies = applicable_topologies(&Scenario::knc_c());
        assert_eq!(topologies.len(), 8);
    }

    #[test]
    fn named_topologies_have_unique_names() {
        let named = named_topologies(&Scenario::knc_a());
        let unique: std::collections::HashSet<&String> = named.iter().map(|(n, _)| n).collect();
        assert_eq!(unique.len(), named.len());
    }
}
