//! Shared helpers for the experiment harness binaries and benches.
//!
//! The binaries in `src/bin/` regenerate the paper's tables and figures
//! (see `DESIGN.md` §3 for the experiment index); the Criterion benches
//! in `benches/` measure the speed claims (the toolchain must run "at the
//! speed of high-level models"). All simulation-grid work goes through
//! the shared sweep engine ([`shg_sim::sweep`] plus the scenario layer
//! in [`sweep`]) instead of per-binary measurement loops.

pub mod sweep;

use rayon::prelude::*;

use shg_core::{Evaluation, Scenario, Toolchain};
use shg_sim::{AllocPolicy, InjectionPolicy, Injector, Network, SimConfig, TrafficPattern};
use shg_topology::db::TopologyDb;
use shg_topology::generators::GeneratorSpec;
use shg_topology::{routing, Grid, TileId, Topology};
use shg_units::Cycles;

/// Drives `cycles` cycles of Phase A (injection) in isolation under
/// uniform-random traffic: the workload the injection benchmarks, the
/// A4 ablation and the headline speedup ratio all share, so they are
/// guaranteed to measure the same thing. Returns the wall time and the
/// number of sampled arrivals (identical across the bit-identical
/// policies).
#[must_use]
pub fn drive_injection_phase(
    injection: InjectionPolicy,
    seed: u64,
    grid: Grid,
    packet_prob: f64,
    cycles: u64,
) -> (std::time::Duration, u64) {
    let mut injector = Injector::new(injection, seed, grid.num_tiles(), packet_prob, cycles);
    let start = std::time::Instant::now();
    let mut arrivals = 0u64;
    for now in 0..cycles {
        injector.fire_at(now, |t, rng| {
            arrivals += u64::from(
                TrafficPattern::UniformRandom
                    .destination(grid, TileId::new(t as u32), rng)
                    .is_some(),
            );
        });
    }
    (start.elapsed(), arrivals)
}

/// One alternating measurement of the allocation phase under both
/// allocation policies (see [`profile_allocation_phase`]).
#[derive(Debug, Clone, Copy)]
pub struct AllocationSample {
    /// Phase C wall seconds under `AllocPolicy::RequestQueue`.
    pub sparse: f64,
    /// Phase C wall seconds under `AllocPolicy::FullScan`.
    pub scan: f64,
}

impl AllocationSample {
    /// The full-scan / request-queue speedup ratio of this sample.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.scan / self.sparse
    }
}

/// Runs `samples` alternating profiled simulations (default routes,
/// unit link latencies) under `AllocPolicy::RequestQueue` and
/// `AllocPolicy::FullScan`, asserting bit-identical outcomes, and
/// returns each round's isolated Phase C wall times. The one
/// measurement protocol shared by the `allocation` Criterion headline,
/// the A5 ablation and the CI perf-smoke gate — so the published
/// number and the gated number cannot drift apart.
///
/// # Panics
///
/// Panics if the topology has no default routes or the two policies
/// disagree on any outcome.
#[must_use]
pub fn profile_allocation_phase(
    topology: &Topology,
    config: &SimConfig,
    rate: f64,
    samples: usize,
) -> Vec<AllocationSample> {
    let routes = routing::default_routes(topology).expect("routes");
    let latencies = vec![Cycles::one(); topology.num_links()];
    let profiled = |alloc: AllocPolicy| {
        let config = SimConfig {
            alloc,
            ..config.clone()
        };
        let mut network = Network::new(topology, &routes, &latencies, config);
        network.run_profiled(rate, TrafficPattern::UniformRandom)
    };
    let _ = profiled(AllocPolicy::RequestQueue); // warm up
    (0..samples)
        .map(|_| {
            let (sparse_outcome, sparse) = profiled(AllocPolicy::RequestQueue);
            let (scan_outcome, scan) = profiled(AllocPolicy::FullScan);
            assert_eq!(sparse_outcome, scan_outcome, "alloc policies must agree");
            AllocationSample {
                sparse: sparse.allocation.as_secs_f64(),
                scan: scan.allocation.as_secs_f64(),
            }
        })
        .collect()
}

/// One alternating measurement of per-cell setup cost: fresh
/// [`Network`] construction vs. [`Network::reset`] of a dirtied reused
/// instance (see [`profile_setup_phase`]).
#[derive(Debug, Clone, Copy)]
pub struct SetupSample {
    /// Wall seconds to build a fresh `Network` for one cell.
    pub fresh: f64,
    /// Wall seconds to `reset` a reused (previously run, therefore
    /// dirty) `Network` for the same cell.
    pub reset: f64,
}

impl SetupSample {
    /// The fresh-construction / reset-reuse speedup ratio of this
    /// sample — what `ExecBackend::Reuse` saves per cell before the
    /// simulation itself starts.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.fresh / self.reset
    }
}

/// Runs `samples` alternating per-cell setups: each round constructs a
/// fresh `Network` and runs one short cell on it, then `reset`s a
/// persistent network (left dirty by the previous round's run) and
/// runs the same cell — asserting bit-identical outcomes — timing only
/// the construction and the reset. The one measurement protocol shared
/// by the `setup_phase` Criterion headline and the CI perf-smoke
/// `network_reset_vs_rebuild` gate.
///
/// # Panics
///
/// Panics if the topology has no default routes or a reused run ever
/// disagrees with its fresh-construction twin.
#[must_use]
pub fn profile_setup_phase(
    topology: &Topology,
    config: &SimConfig,
    rate: f64,
    samples: usize,
) -> Vec<SetupSample> {
    let routes = routing::default_routes(topology).expect("routes");
    let latencies = vec![Cycles::one(); topology.num_links()];
    let cell_config = |seed: u64| SimConfig {
        seed,
        ..config.clone()
    };
    // Dirty the reused instance before the first sample so every reset
    // measured cleans a realistically touched network.
    let mut reused = Network::new(topology, &routes, &latencies, cell_config(0));
    let _ = reused.run(rate, TrafficPattern::UniformRandom);
    (0..samples as u64)
        .map(|i| {
            let seed = config.seed.wrapping_add(i + 1);
            let start = std::time::Instant::now();
            let mut fresh_net = Network::new(topology, &routes, &latencies, cell_config(seed));
            let fresh = start.elapsed().as_secs_f64();
            let fresh_outcome = fresh_net.run(rate, TrafficPattern::UniformRandom);
            let start = std::time::Instant::now();
            reused.reset(seed);
            let reset = start.elapsed().as_secs_f64();
            let reused_outcome = reused.run(rate, TrafficPattern::UniformRandom);
            assert_eq!(
                fresh_outcome, reused_outcome,
                "reset-reuse must match fresh construction"
            );
            SetupSample { fresh, reset }
        })
        .collect()
}

/// The median of a sample set (odd-length sets return the true
/// median). Used by the bench headlines and the perf-smoke gate.
///
/// # Panics
///
/// Panics on an empty set.
#[must_use]
pub fn median(mut samples: Vec<f64>) -> f64 {
    assert!(!samples.is_empty(), "median of an empty sample set");
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// All topologies applicable to a scenario's grid, in Fig. 6's order:
/// ring, mesh, torus, folded torus, hypercube (power-of-two grids),
/// SlimNoC (2q² tiles), flattened butterfly, and the scenario's customized
/// sparse Hamming graph. The fixed topologies come from
/// [`GeneratorSpec::fixed`]; specs the grid does not admit (hypercube,
/// SlimNoC) are skipped.
#[must_use]
pub fn applicable_topologies(scenario: &Scenario) -> Vec<Topology> {
    let grid = scenario.params.grid;
    let mut topologies: Vec<Topology> = GeneratorSpec::fixed()
        .iter()
        .filter_map(|spec| spec.build(grid).ok())
        .collect();
    topologies.push(scenario.shg.build());
    topologies
}

/// The topology selected by `--topology <spec>` (default `shg`), named
/// the way the sweep engine's cases are — the one `--topology` parser
/// every harness binary shares instead of per-binary name matching:
///
/// * `shg` — the scenario's customized sparse Hamming graph;
/// * any [`GeneratorSpec`] (`mesh`, `torus`, `fb`, `ruche:3`,
///   `shg:sr=4:sc=2,5`, …), built on the scenario grid;
/// * `db:<spec>` — a topology database in its one-token wire form
///   (fields `/`-separated, statements `;`-separated), instantiated
///   through the expanded grid.
///
/// The case is named by the raw `--topology` value unless `--case
/// <name>` overrides it (e.g. to byte-compare a DB-built topology
/// against its legacy twin under the same case name).
///
/// Unknown specs and grid mismatches are usage errors: reported via
/// [`cli_error`] (exit code 2), never a panic.
#[must_use]
pub fn topology_from_args(scenario: &Scenario) -> (String, Topology) {
    let raw = arg_value("--topology").unwrap_or_else(|| "shg".to_owned());
    let grid = scenario.params.grid;
    let topology = if raw == "shg" {
        scenario.shg.build()
    } else if let Some(spec) = raw.strip_prefix("db:") {
        TopologyDb::parse(spec)
            .map_err(|e| e.to_string())
            .and_then(|db| db.instantiate().map_err(|e| e.to_string()))
            .unwrap_or_else(|e| cli_error(format!("--topology {raw}: {e}")))
    } else {
        raw.parse::<GeneratorSpec>()
            .map_err(|e| e.to_string())
            .and_then(|spec| spec.build(grid).map_err(|e| e.to_string()))
            .unwrap_or_else(|e| cli_error(format!("--topology {raw}: {e}")))
    };
    let name = arg_value("--case").unwrap_or(raw);
    (name, topology)
}

/// Like [`applicable_topologies`], labelled with their display names
/// (the form the sweep engine's cases take).
#[must_use]
pub fn named_topologies(scenario: &Scenario) -> Vec<(String, Topology)> {
    applicable_topologies(scenario)
        .into_iter()
        .map(|t| (t.kind().to_string(), t))
        .collect()
}

/// Evaluates all applicable topologies, fanned out on the rayon pool.
///
/// # Panics
///
/// Panics if any evaluation fails (all built-in topologies route).
#[must_use]
pub fn evaluate_all(scenario: &Scenario, toolchain: &Toolchain) -> Vec<Evaluation> {
    let topologies = applicable_topologies(scenario);
    topologies
        .par_iter()
        .map(|topology| {
            toolchain
                .evaluate(&scenario.params, topology)
                .unwrap_or_else(|e| panic!("evaluating {topology}: {e}"))
        })
        .collect()
}

/// Reports a user-input error the way a CLI should — a one-line
/// message plus a pointer at `--help` on stderr, exit code 2 (the
/// conventional usage-error code, distinct from runtime failures' 1) —
/// instead of a panic with a backtrace. Every harness binary funnels
/// its flag-validation failures through here.
pub fn cli_error(message: impl std::fmt::Display) -> ! {
    eprintln!("error: {message}");
    eprintln!("run with --help for usage");
    std::process::exit(2);
}

/// Parses `--scenario <name>` style flags out of `std::env::args`.
#[must_use]
pub fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// `true` if a bare flag (e.g. `--fast`) is present.
#[must_use]
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Parses an allocation-policy name (the `--alloc` values the harness
/// binaries accept).
#[must_use]
pub fn alloc_policy_by_name(name: &str) -> Option<AllocPolicy> {
    match name {
        "request-queue" | "rq" => Some(AllocPolicy::RequestQueue),
        "full-scan" | "scan" => Some(AllocPolicy::FullScan),
        _ => None,
    }
}

/// The fault-injection plan selected by `--faults <plan>` (default:
/// the empty plan — no faults, bit-identical to a fault-free build).
/// The wire form is [`shg_sim::FaultPlan::parse`]'s: an optional
/// `drop`/`drain` in-flight policy token followed by comma-separated
/// `CYCLE:link:A-B` / `CYCLE:router:R` kills, e.g.
/// `drain,2000:link:3-4,2500:router:9`.
///
/// Only the syntax is checked here; range checks against the concrete
/// swept topologies happen when cases are annotated
/// ([`sweep::annotated_experiment`]) or, for single-topology binaries,
/// via [`shg_sim::FaultPlan::validate`] at the call site.
///
/// A malformed plan is a usage error: reported via [`cli_error`] (exit
/// code 2), never a panic.
#[must_use]
pub fn fault_plan_from_args() -> shg_sim::FaultPlan {
    arg_value("--faults").map_or_else(shg_sim::FaultPlan::default, |spec| {
        shg_sim::FaultPlan::parse(&spec)
            .unwrap_or_else(|e| cli_error(format!("--faults '{spec}': {e}")))
    })
}

/// The allocation policy selected by `--alloc request-queue|full-scan`
/// (default: the request-driven allocator). Every harness binary that
/// simulates accepts the flag, so the exhaustive reference stays one
/// CLI switch away for cross-checking a whole experiment.
///
/// An unknown policy name is a usage error: reported via [`cli_error`]
/// (exit code 2), never a panic.
#[must_use]
pub fn alloc_policy_from_args() -> AllocPolicy {
    arg_value("--alloc").map_or(AllocPolicy::RequestQueue, |name| {
        alloc_policy_by_name(&name).unwrap_or_else(|| {
            cli_error(format!(
                "unknown --alloc '{name}' (use request-queue|full-scan)"
            ))
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_a_has_seven_topologies() {
        // 64 tiles: no SlimNoC.
        let topologies = applicable_topologies(&Scenario::knc_a());
        assert_eq!(topologies.len(), 7);
    }

    #[test]
    fn scenario_c_has_eight_topologies() {
        // 128 tiles: SlimNoC applies.
        let topologies = applicable_topologies(&Scenario::knc_c());
        assert_eq!(topologies.len(), 8);
    }

    #[test]
    fn named_topologies_have_unique_names() {
        let named = named_topologies(&Scenario::knc_a());
        let unique: std::collections::HashSet<&String> = named.iter().map(|(n, _)| n).collect();
        assert_eq!(unique.len(), named.len());
    }
}
