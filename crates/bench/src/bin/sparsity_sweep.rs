//! A3 — ablation: the cost/performance trade-off curve swept across the
//! sparse Hamming design space, from the mesh to the flattened butterfly.
//!
//! This regenerates the paper's central narrative (Section III: "the
//! sparse Hamming graph spans the design space between a mesh topology
//! (low cost) and a flattened butterfly topology (high performance)") as
//! a frontier table, then validates the final configuration across all
//! seven traffic patterns on the shared sweep engine.
//!
//! Run with: `cargo run --release -p shg-bench --bin sparsity_sweep --
//! [--scenario a] [--alloc request-queue|full-scan]
//! [--shard i/N] [--resume journal.jsonl] [--cache <dir>]
//!  [--backend per-cell|reuse|batched|auto] [--lanes K] [--progress]`
//!
//! The seven-pattern validation runs at 6.25% rate resolution
//! (tightened from 12.5% once request-driven allocation made Phase C
//! cheap); measured runtime ≈ 7 s on one core.

use shg_bench::arg_value;
use shg_core::{customize, DesignGoals, Scenario, Toolchain};
use shg_sim::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = arg_value("--scenario").unwrap_or_else(|| "a".to_owned());
    let scenario =
        Scenario::by_name(&which).ok_or_else(|| format!("unknown scenario '{which}'"))?;
    println!(
        "=== Sparsity sweep, scenario ({}) — mesh → flattened butterfly ===\n",
        scenario.name
    );
    // Run the customization loop with an unbounded budget: it walks the
    // greedy frontier all the way to the densest profitable configuration.
    let toolchain = Toolchain::fast();
    let trace = customize(
        &toolchain,
        &scenario.params,
        DesignGoals { area_budget: 1.0 },
    )?;
    println!(
        "{:<34} {:>8} {:>11} {:>11} {:>12} {:>11}",
        "Configuration", "Radix", "AreaOvh[%]", "Power[W]", "ZLL[cycles]", "SatThr[%]"
    );
    println!("{}", "-".repeat(92));
    for step in &trace.steps {
        let e = &step.evaluation;
        println!(
            "{:<34} {:>8} {:>11.1} {:>11.2} {:>12.1} {:>11.1}",
            step.config.to_string(),
            e.router_radix,
            e.area_overhead * 100.0,
            e.noc_power.value(),
            e.zero_load_latency,
            e.saturation_throughput * 100.0,
        );
    }
    println!(
        "\n{} greedy steps through a design space of {} configurations.",
        trace.steps.len(),
        shg_core::SparseHammingConfig::design_space_size(
            scenario.params.grid.rows(),
            scenario.params.grid.cols()
        )
    );
    println!(
        "Reading the frontier: every row buys throughput/latency with area —\n\
         the knob the paper's customization strategy turns until the budget\n\
         (40% in Fig. 6) is met."
    );
    // Validate the densest accepted configuration across all seven
    // patterns (the greedy loop ranked with uniform-random analytics).
    let best = trace.best();
    let topology = best.config.build();
    let sweep_toolchain = Toolchain {
        sim: SimConfig {
            alloc: shg_bench::alloc_policy_from_args(),
            ..SimConfig::fast_test()
        },
        ..toolchain
    };
    let mut experiment = sweep_toolchain.pattern_experiment(&scenario.params, &topology, 16)?;
    let result = shg_bench::sweep::run_experiment(&mut experiment);
    let per_pattern = sweep_toolchain.pattern_performance(&result, &topology.kind().to_string());
    println!(
        "\nSeven-pattern validation of {} (simulated, resolution 6.25%,\n\
         hot-spot grid log-extended down to 1%):",
        best.config
    );
    println!(
        "{:<16} {:>14} {:>18}",
        "Pattern", "SatThr[%]", "LowLoadLat[cyc]"
    );
    println!("{}", "-".repeat(50));
    for p in per_pattern {
        println!(
            "{:<16} {:>14.1} {:>18.1}",
            p.pattern.to_string(),
            p.saturation_throughput * 100.0,
            p.low_load_latency,
        );
    }
    Ok(())
}
