//! Latency-vs-offered-load curves — the raw simulator data underlying the
//! saturation-throughput points of Fig. 6, for every traffic pattern.
//!
//! Run with:
//! `cargo run --release -p shg-bench --bin load_curve -- [--scenario a]
//!  [--topology <spec>] [--case <name>]
//!  [--pattern all|uniform|transpose|...]
//!  [--alloc request-queue|full-scan] [--faults <plan>] [--json]
//!  [--shard i/N] [--resume journal.jsonl] [--cache <dir>]
//!  [--backend per-cell|reuse|batched|auto] [--lanes K] [--progress]`
//!
//! `--topology` takes the shared spec grammar
//! ([`shg_bench::topology_from_args`]): `shg` (default, the scenario's
//! customized graph), any generator spec (`mesh`, `torus`, `fb`,
//! `ring`, `ruche:3`, `shg:sr=4:sc=2,5`, …) on the scenario grid, or
//! `db:<wire spec>` for an expanded-grid topology instantiated from a
//! topology database. `--case` renames the sweep case (e.g. to
//! byte-compare a DB-built mesh against the legacy `mesh` case).
//!
//! `--json` prints the full `SweepResult` as JSON instead of tables —
//! the machine-readable output downstream plotting consumes. The
//! sharding flags are the standard set
//! ([`shg_bench::sweep::run_experiment`]).

use shg_bench::{arg_value, has_flag};
use shg_core::{AnnotatedTopology, Scenario};
use shg_floorplan::ModelOptions;
use shg_sim::sweep::ALL_PATTERNS;
use shg_sim::{Experiment, SimConfig, SweepCase, SweepSpec, TrafficPattern};
use shg_topology::routing;

fn pattern_by_name(name: &str) -> Option<TrafficPattern> {
    match name {
        "uniform" | "uniform-random" => Some(TrafficPattern::UniformRandom),
        "transpose" => Some(TrafficPattern::Transpose),
        "bit-complement" | "bitcomp" => Some(TrafficPattern::BitComplement),
        "reverse" => Some(TrafficPattern::Reverse),
        "tornado" => Some(TrafficPattern::Tornado),
        "neighbor" => Some(TrafficPattern::Neighbor),
        "hotspot" => Some(TrafficPattern::Hotspot(20)),
        _ => None,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = arg_value("--scenario").unwrap_or_else(|| "a".to_owned());
    let scenario =
        Scenario::by_name(&which).ok_or_else(|| format!("unknown scenario '{which}'"))?;
    let (topology_name, topology) = shg_bench::topology_from_args(&scenario);
    // An expanded-grid topology replaces the scenario grid; the
    // floorplan model asserts its parameter grid matches the topology.
    let mut params = scenario.params.clone();
    params.grid = topology.grid();
    let patterns: Vec<TrafficPattern> = match arg_value("--pattern").as_deref() {
        None | Some("all") => ALL_PATTERNS.to_vec(),
        Some(name) => {
            vec![pattern_by_name(name).ok_or_else(|| format!("unknown pattern '{name}'"))?]
        }
    };
    let annotated = AnnotatedTopology::annotate(
        &params,
        topology,
        &ModelOptions {
            cell_scale: 2.0,
            ..ModelOptions::default()
        },
    );
    let routes = routing::default_routes(&annotated.topology)?;
    let faults = shg_bench::fault_plan_from_args();
    faults
        .validate(&annotated.topology)
        .unwrap_or_else(|e| shg_bench::cli_error(format!("--faults: {e}")));
    let config = SimConfig {
        warmup: 3_000,
        measure: 6_000,
        drain_limit: 20_000,
        alloc: shg_bench::alloc_policy_from_args(),
        faults,
        ..SimConfig::default()
    };
    let spec = SweepSpec::new(config)
        .rates((1..=19).map(|i| f64::from(i) * 0.05))
        .patterns(patterns)
        // Hot-spot curves saturate below 0.05 on the KNC grids; give
        // them a log-spaced low end so the curve has a stable segment.
        .hotspot_low_rates(4, 0.005);
    let mut experiment = Experiment::new(spec).with_case(SweepCase::annotated(
        topology_name.clone(),
        &annotated.topology,
        routes,
        annotated.link_latencies.clone(),
    ));
    let result = shg_bench::sweep::run_experiment(&mut experiment);
    if has_flag("--json") {
        println!("{}", result.to_json());
        return Ok(());
    }
    println!(
        "Load sweep: {} on scenario ({}), {} pattern(s), {} points",
        annotated.topology,
        scenario.name,
        experiment.spec().patterns.len(),
        result.points.len()
    );
    println!("\n{}", result.table());
    for &pattern in &experiment.spec().patterns {
        match result.saturation_estimate(&topology_name, pattern, 0.05) {
            Some(sat) => println!(
                "{pattern}: sustains {:.0}% of injection capacity",
                sat * 100.0
            ),
            None => println!("{pattern}: saturates below the lowest swept rate"),
        }
    }
    Ok(())
}
