//! Latency-vs-offered-load curves — the raw simulator data underlying the
//! saturation-throughput points of Fig. 6.
//!
//! Run with:
//! `cargo run --release -p shg-bench --bin load_curve -- [--scenario a] [--topology shg|mesh|torus|fb]`

use shg_bench::arg_value;
use shg_core::{AnnotatedTopology, Scenario};
use shg_floorplan::ModelOptions;
use shg_sim::{load_sweep, SimConfig, TrafficPattern};
use shg_topology::{generators, routing};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = arg_value("--scenario").unwrap_or_else(|| "a".to_owned());
    let scenario =
        Scenario::by_name(&which).ok_or_else(|| format!("unknown scenario '{which}'"))?;
    let topology_name = arg_value("--topology").unwrap_or_else(|| "shg".to_owned());
    let grid = scenario.params.grid;
    let topology = match topology_name.as_str() {
        "mesh" => generators::mesh(grid),
        "torus" => generators::torus(grid),
        "fb" => generators::flattened_butterfly(grid),
        "ring" => generators::ring(grid),
        "shg" => scenario.shg.build(),
        other => return Err(format!("unknown topology '{other}'").into()),
    };
    println!(
        "Load sweep: {} on scenario ({}), uniform random traffic",
        topology, scenario.name
    );
    let annotated = AnnotatedTopology::annotate(
        &scenario.params,
        topology,
        &ModelOptions {
            cell_scale: 2.0,
            ..ModelOptions::default()
        },
    );
    let routes = routing::default_routes(&annotated.topology)?;
    let config = SimConfig {
        warmup: 3_000,
        measure: 6_000,
        drain_limit: 20_000,
        ..SimConfig::default()
    };
    let rates: Vec<f64> = (1..=19).map(|i| i as f64 * 0.05).collect();
    let outcomes = load_sweep(
        &annotated.topology,
        &routes,
        &annotated.link_latencies,
        &config,
        TrafficPattern::UniformRandom,
        &rates,
    );
    println!(
        "\n{:>10} {:>10} {:>14} {:>14} {:>8}",
        "Offered", "Accepted", "AvgLat[cyc]", "MaxLat[cyc]", "Stable"
    );
    println!("{}", "-".repeat(62));
    for (rate, outcome) in rates.iter().zip(&outcomes) {
        println!(
            "{:>10.2} {:>10.3} {:>14.1} {:>14.0} {:>8}",
            rate,
            outcome.accepted_rate,
            outcome.avg_packet_latency,
            outcome.max_packet_latency,
            outcome.stable
        );
        // Stop printing deep into saturation: the curve is vertical there.
        if !outcome.stable && outcome.accepted_rate < rate * 0.7 {
            println!("… (saturated)");
            break;
        }
    }
    Ok(())
}
