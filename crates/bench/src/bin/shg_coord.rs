//! Sweep-as-a-service coordinator: accepts sweep requests on stdin,
//! cuts each request's cell grid into chunks, dispatches them to a
//! fleet of `sweep_worker` processes over the framed protocol, steals
//! remaining chunks from stragglers, requeues the chunks of workers
//! that die mid-request, streams completed entries into one journal in
//! canonical order, and answers warm or duplicate requests straight
//! from the shared cell cache — including pre-warming workers' caches
//! with entries (cache entries travel to workers, cells don't).
//!
//! Run with:
//! `cargo run --release -p shg-bench --bin shg_coord --
//!  (--spawn-workers N [--worker-bin path] | --listen host:port --workers N)
//!  [--scenario a|b|c|d] [--fast] [--rate-points N] [--add-rates r,..]
//!  [--alloc request-queue|full-scan] [--db <wire spec>]
//!  [--faults <plan>] [--cache <dir>]
//!  [--backend per-cell|reuse|batched|auto] [--lanes K]
//!  [--chunk-size N] [--durable] [--progress] [--kill-worker I:AFTER]`
//!
//! Requests are lines on stdin, each `key=value` tokens:
//!
//! ```text
//! out=first.json journal=first.jsonl
//! out=second.json rate-points=4
//! ```
//!
//! `out=` (required) is where the request's full `SweepResult` JSON is
//! written — byte-identical to `sweep_worker --single-shot` of the
//! same flags, no matter how chunks interleaved, stole or died.
//! `journal=` (optional) streams a solo-shard journal alongside,
//! byte-identical to a `sweep_worker --out` solo run. The plan keys
//! (`scenario`, `fast`, `rate-points`, `add-rates`, `alloc`, `db` — a
//! topology database in its one-token wire form, sweeping one
//! expanded-grid topology instead of the scenario set — and `faults`,
//! a deterministic fault-injection plan) default
//! to the coordinator's own flags and may be overridden per request;
//! they are forwarded to the workers as the user's raw strings, and
//! the plan-fingerprint handshake aborts the request if any worker
//! interprets them differently.
//!
//! `--cache` points the coordinator at the shared cell cache: every
//! cell is probed there before dispatch (a duplicate request reports
//! `cache: cached=N simulated=0 total=N` without the fleet hearing
//! about it), worker results are banked back, and cache-holding
//! workers are pre-warmed. In spawn mode, `--cache`, `--backend` and
//! `--lanes` are forwarded to the spawned workers.
//!
//! `--kill-worker I:AFTER` (spawn mode; the chaos hook of the CI
//! `coord-smoke` job) SIGKILLs the `I`-th spawned worker (1-based)
//! after `AFTER` chunks have completed — work stealing and requeueing
//! must still finish the grid with identical bytes.

use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;

use shg_bench::sweep::{
    annotated_experiment, cache_summary, request_params_from_args, request_setup, TopologyCache,
};
use shg_bench::{arg_value, cli_error, has_flag, named_topologies};
use shg_core::Scenario;
use shg_sim::sweep::{run_coordinated, CoordOptions, WorkerLink};
use shg_sim::CellCache;
use shg_topology::Topology;

const USAGE: &str = "\
Usage: shg_coord (--spawn-workers N [--worker-bin path]
                  | --listen host:port --workers N)
                 [--scenario a|b|c|d] [--fast] [--rate-points N]
                 [--add-rates r1,r2,..] [--alloc request-queue|full-scan]
                 [--routes dense|next-hop]
                 [--cache <dir>] [--backend name] [--lanes K]
                 [--chunk-size N] [--durable] [--progress]
                 [--kill-worker I:AFTER]

  Reads requests from stdin, one per line, as key=value tokens:
    out=result.json [journal=j.jsonl] [scenario=..] [fast=1]
    [rate-points=N] [add-rates=r1,r2] [alloc=..] [routes=..]
    [db=<wire spec>] [faults=<plan>]
  and answers each with the full sweep JSON at out= — byte-identical
  to `sweep_worker --single-shot` of the same flags. db= sweeps one
  expanded-grid topology instantiated from a topology database in its
  one-token wire form (e.g. db=die/a/4x4/mesh;die/b/4x4/shg:sr=2).
  faults= injects deterministic mid-run link/router kills (e.g.
  faults=drain,2000:link:3-4,2500:router:9) with rerouting over the
  surviving graph; the raw plan string is forwarded to the workers
  like every other plan key.

  --spawn-workers  spawn N `sweep_worker --serve` children over pipes
  --worker-bin     worker binary (default: sweep_worker next to this
                   binary)
  --listen         accept --workers N TCP worker connections instead
                   (workers dial in with `sweep_worker --connect`)
  --scenario/--fast/--rate-points/--add-rates/--alloc/--routes
                   per-request plan defaults (overridable per line;
                   routes picks the routing-table form, default
                   next-hop — bit-identical to dense)
  --cache          shared cell-result cache: probed before dispatch,
                   results banked, cache-holding workers pre-warmed
  --backend/--lanes  forwarded to spawned workers
  --chunk-size     cells per dispatched chunk (default: ~4 per worker)
  --durable        fsync the streamed journal after header and chunks
  --progress       log chunk completions to stderr
  --kill-worker    I:AFTER — SIGKILL the I-th spawned worker (1-based)
                   after AFTER completed chunks (crash-recovery smoke)";

/// One parsed stdin request line.
struct Request {
    out: String,
    journal: Option<String>,
    params: Vec<(String, String)>,
}

/// Parses `key=value` tokens, starting from the coordinator's own plan
/// flags; plan keys override the base, `out=`/`journal=` stay local.
fn parse_request(line: &str, base: &[(String, String)]) -> Result<Request, String> {
    let mut params = base.to_vec();
    let mut out = None;
    let mut journal = None;
    for token in line.split_whitespace() {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| format!("request token '{token}' is not key=value"))?;
        match key {
            "out" => out = Some(value.to_owned()),
            "journal" => journal = Some(value.to_owned()),
            "scenario" | "fast" | "rate-points" | "add-rates" | "alloc" | "routes" | "db"
            | "faults" => match params.iter_mut().find(|(k, _)| k == key) {
                Some(pair) => pair.1 = value.to_owned(),
                None => params.push((key.to_owned(), value.to_owned())),
            },
            other => return Err(format!("unknown request key '{other}'")),
        }
    }
    Ok(Request {
        out: out.ok_or("request line has no out=PATH")?,
        journal,
        params,
    })
}

/// Spawns `count` `sweep_worker --serve` children, protocol on piped
/// stdio, stderr inherited (worker logs interleave with ours).
fn spawn_fleet(count: usize, forward: &[String]) -> (Vec<Child>, Vec<WorkerLink>) {
    let worker_bin = arg_value("--worker-bin").unwrap_or_else(|| {
        let mut path = std::env::current_exe().unwrap_or_else(|e| cli_error(format!("{e}")));
        path.set_file_name("sweep_worker");
        path.to_string_lossy().into_owned()
    });
    let mut children = Vec::new();
    let mut links = Vec::new();
    for i in 0..count {
        let mut child = Command::new(&worker_bin)
            .arg("--serve")
            .args(forward)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| cli_error(format!("spawning {worker_bin}: {e}")));
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        links.push(WorkerLink::new(format!("worker-{}", i + 1), stdout, stdin));
        children.push(child);
    }
    (children, links)
}

/// Accepts `count` TCP worker connections on `addr`.
fn accept_fleet(addr: &str, count: usize) -> Vec<WorkerLink> {
    let listener = std::net::TcpListener::bind(addr)
        .unwrap_or_else(|e| cli_error(format!("--listen {addr}: {e}")));
    eprintln!("[shg_coord] listening on {addr} for {count} worker(s)");
    (0..count)
        .map(|i| {
            let (stream, peer) = listener
                .accept()
                .unwrap_or_else(|e| cli_error(format!("accepting workers: {e}")));
            eprintln!("[shg_coord] worker {} connected from {peer}", i + 1);
            WorkerLink::from_tcp(format!("worker-{}", i + 1), stream)
                .unwrap_or_else(|e| cli_error(format!("worker stream: {e}")))
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if has_flag("--help") {
        println!("{USAGE}");
        return Ok(());
    }

    // Parse every flag before the fleet exists, so usage errors exit
    // without orphaning spawned workers.
    let kill_spec: Option<(usize, u64)> = arg_value("--kill-worker").map(|spec| {
        let parsed = spec.split_once(':').and_then(|(index, after)| {
            Some((index.parse::<usize>().ok()?, after.parse::<u64>().ok()?))
        });
        match parsed {
            Some((index, after)) if index >= 1 => (index, after),
            _ => cli_error(format!(
                "--kill-worker '{spec}': expected I:AFTER, I one-based"
            )),
        }
    });
    let options = CoordOptions {
        chunk_size: arg_value("--chunk-size").map(|n| {
            n.parse::<usize>()
                .unwrap_or_else(|e| cli_error(format!("--chunk-size {n}: {e}")))
        }),
        durable: has_flag("--durable"),
    };
    let progress_flag = has_flag("--progress");
    let cache_dir = arg_value("--cache");
    // The coordinator's own plan flags are the per-request defaults;
    // interpreting them once up front turns a malformed --scenario,
    // --db or --faults into an immediate usage error instead of a
    // failure on the first request (after workers were spawned).
    let base_params = request_params_from_args();
    let _ = request_setup(&base_params).unwrap_or_else(|e| cli_error(e));

    // Fleet.
    let spawn_count = arg_value("--spawn-workers").map(|n| {
        n.parse::<usize>()
            .unwrap_or_else(|e| cli_error(format!("--spawn-workers {n}: {e}")))
    });
    let listen = arg_value("--listen");
    let (children, mut links) = match (spawn_count, listen) {
        (Some(n), None) if n > 0 => {
            let mut forward = Vec::new();
            for flag in ["--cache", "--backend", "--lanes"] {
                if let Some(value) = arg_value(flag) {
                    forward.extend([flag.to_owned(), value]);
                }
            }
            spawn_fleet(n, &forward)
        }
        (None, Some(addr)) => {
            let n = arg_value("--workers").map_or(1, |n| {
                n.parse::<usize>()
                    .unwrap_or_else(|e| cli_error(format!("--workers {n}: {e}")))
            });
            (Vec::new(), accept_fleet(&addr, n))
        }
        _ => cli_error("pass exactly one of --spawn-workers N (N > 0) or --listen host:port"),
    };
    let children = Mutex::new(children);
    let mut kill_done = false;

    // Coordinator-side experiment ingredients, shared across requests.
    let scenarios: Vec<(String, Vec<(String, Topology)>)> = ["a", "b", "c", "d"]
        .iter()
        .map(|letter| {
            let scenario = Scenario::by_name(letter).expect("built-in scenario");
            (scenario.name.clone(), named_topologies(&scenario))
        })
        .collect();
    let mut topo_cache = TopologyCache::new();

    let stdin = std::io::stdin().lock();
    let mut request_id = 0u64;
    for line in stdin.lines() {
        let line = line?;
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        request_id += 1;
        let request = parse_request(&line, &base_params).unwrap_or_else(|e| cli_error(e));
        let setup = request_setup(&request.params).unwrap_or_else(|e| cli_error(e));
        let topologies: &[(String, Topology)] = match &setup.db_topology {
            // The setup outlives the request's experiment, so the
            // expanded-grid topology is borrowed in place.
            Some(pair) => std::slice::from_ref(pair),
            None => scenarios
                .iter()
                .find(|(name, _)| *name == setup.scenario.name)
                .map(|(_, topologies)| topologies.as_slice())
                .expect("every scenario's topologies are prebuilt"),
        };
        let mut experiment = annotated_experiment(
            &setup.scenario.params,
            &setup.model_options,
            &mut topo_cache,
            topologies,
            setup.spec,
            setup.route_form,
        )
        .unwrap_or_else(|e| cli_error(e));
        // A fresh cache handle per request: its counters are this
        // request's cached/simulated split over the shared directory.
        if let Some(dir) = &cache_dir {
            let cache =
                CellCache::open(dir).unwrap_or_else(|e| cli_error(format!("--cache {dir}: {e}")));
            experiment.set_cache(cache);
        }
        let experiment = experiment;
        let plan = experiment.plan();
        println!(
            "request {request_id}: scenario ({}), {} cells (fingerprint {:#018x}) → {}",
            setup.scenario.name,
            plan.num_cells(),
            plan.fingerprint(),
            request.out
        );

        let kill_done = &mut kill_done;
        let children_ref = &children;
        let progress = move |p: shg_sim::sweep::CoordProgress| {
            if let Some((index, after)) = kill_spec {
                if !*kill_done && p.chunks_done >= after {
                    *kill_done = true;
                    eprintln!(
                        "[shg_coord] killing worker {index} after {} completed chunk(s)",
                        p.chunks_done
                    );
                    let mut children = children_ref.lock().expect("children mutex");
                    if let Some(child) = children.get_mut(index - 1) {
                        let _ = child.kill();
                    }
                }
            }
            if progress_flag {
                eprintln!(
                    "[shg_coord] request {request_id}: {}/{} chunks, {}/{} cells",
                    p.chunks_done, p.chunks_total, p.cells_done, p.cells_total
                );
            }
        };

        let (result, summary) = run_coordinated(
            &experiment,
            request_id,
            &request.params,
            &mut links,
            request.journal.as_deref().map(std::path::Path::new),
            &options,
            progress,
        )?;
        std::fs::write(&request.out, result.to_json())?;
        println!(
            "request {request_id} done: cached={} dispatched={} chunks={} stolen={} \
             requeued={} lost-workers={} → {}",
            summary.cached,
            summary.dispatched,
            summary.chunks,
            summary.stolen_chunks,
            summary.requeued_chunks,
            summary.lost_workers,
            request.out
        );
        if let Some(line) = cache_summary(&experiment) {
            println!("{line}");
        }
        if let Some(journal) = &request.journal {
            println!(
                "request {request_id} journal: {journal} ({} syncs)",
                summary.journal_syncs
            );
        }
    }

    // Drain the fleet: polite shutdown, close the pipes, reap children.
    for link in &mut links {
        link.shutdown();
    }
    drop(links);
    for child in children.lock().expect("children mutex").iter_mut() {
        let _ = child.wait();
    }
    eprintln!("[shg_coord] all requests served; fleet shut down");
    Ok(())
}
