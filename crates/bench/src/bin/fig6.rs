//! E3–E6 — regenerates Fig. 6: cost and performance comparison of all
//! topologies for the four KNC-like scenarios, widened from the paper's
//! uniform-random-only evaluation to all seven traffic patterns via the
//! shared sweep engine.
//!
//! Run with:
//! `cargo run --release -p shg-bench --bin fig6 -- [--scenario a|b|c|d|all]
//!  [--fast] [--customize] [--alloc request-queue|full-scan]
//!  [--shard i/N] [--resume journal.jsonl] [--cache <dir>]
//!  [--backend per-cell|reuse|batched|auto] [--lanes K] [--progress]`
//!
//! The pattern sweeps run through the standard shard-/journal-aware
//! executor ([`shg_bench::sweep::run_experiment`]), which also reads
//! the incremental flags: `--cache <dir>` re-simulates only cells no
//! earlier run cached (re-running a scenario after a model or grid
//! widening touches just the delta) and `--backend reuse` batches
//! cells per topology onto one reset-reused `Network`; `sweep_worker`
//! and `sweep_merge` are the purpose-built pair for cross-machine
//! runs.
//!
//! `--fast` replaces the cycle-accurate saturation search with the
//! analytic channel-load bound, coarsens the detailed-routing grid and
//! shrinks the pattern sweep's simulator windows (seconds instead of
//! minutes; same orderings).
//!
//! `--customize` additionally re-runs the paper's Section V-a
//! customization loop against *this* model and appends the resulting
//! configuration as an extra row. The paper's published SR/SC values were
//! customized against the authors' calibrated model; re-customizing is
//! the faithful way to reproduce the methodology on a different substrate.
//!
//! Default pattern-sweep resolution: 10% (`--fast`) / 5% (full) of
//! injection capacity — tightened from 20%/10% once request-driven
//! allocation made Phase C cheap. Measured runtime on one core
//! (request-queue allocator; the sweeps scale with cores via rayon):
//! `--scenario a --fast` ≈ 50 s, `--scenario all --fast` ≈ 6.5 min,
//! dominated by the floorplan model rather than the simulator; full
//! fidelity `--scenario a` ≈ 14 min (simulated saturation search at
//! the 5% grid).

use shg_bench::sweep::{pattern_saturation_table, scenario_sweep};
use shg_bench::{arg_value, evaluate_all, has_flag, named_topologies};
use shg_core::{customize, report, DesignGoals, PerformanceMode, Scenario, Toolchain};
use shg_floorplan::ModelOptions;
use shg_sim::SimConfig;

fn main() {
    let which = arg_value("--scenario").unwrap_or_else(|| "all".to_owned());
    let fast = has_flag("--fast");
    let alloc = shg_bench::alloc_policy_from_args();
    let scenarios: Vec<Scenario> = if which == "all" {
        Scenario::all_knc()
    } else {
        vec![Scenario::by_name(&which)
            .unwrap_or_else(|| panic!("unknown scenario '{which}' (use a|b|c|d|all)"))]
    };
    let mut toolchain = if fast {
        Toolchain {
            model_options: ModelOptions {
                cell_scale: 4.0,
                ..ModelOptions::default()
            },
            mode: PerformanceMode::Analytic,
            ..Toolchain::default()
        }
    } else {
        Toolchain {
            model_options: ModelOptions {
                cell_scale: 2.0,
                ..ModelOptions::default()
            },
            ..Toolchain::default()
        }
    };
    toolchain.sim.alloc = alloc;
    for mut scenario in scenarios {
        println!(
            "=== Fig. 6{} — {} (SHG: {}) ===",
            scenario.name, scenario.description, scenario.shg
        );
        println!(
            "Hop-minimal routing, {} throughput\n",
            if fast { "analytic" } else { "simulated" }
        );
        let mut evaluations = evaluate_all(&scenario, &toolchain);
        if has_flag("--customize") {
            // Rank candidates with the fast analytic toolchain, then
            // re-evaluate the winner with the full one.
            let trace = customize(
                &Toolchain {
                    model_options: ModelOptions {
                        cell_scale: 6.0,
                        ..ModelOptions::default()
                    },
                    mode: PerformanceMode::Analytic,
                    ..Toolchain::default()
                },
                &scenario.params,
                DesignGoals {
                    area_budget: scenario.area_budget,
                },
            )
            .expect("customization runs");
            let best = trace.best();
            let mut eval = toolchain
                .evaluate(&scenario.params, &best.config.build())
                .expect("customized config evaluates");
            eval.name = format!("SHG re-customized {}", best.config);
            println!(
                "Re-customized against this model: {} ({} steps)\n",
                best.config,
                trace.steps.len()
            );
            evaluations.push(eval);
        }
        println!("{}", report::evaluation_table(&evaluations));
        // The paper's headline claim per scenario.
        let within: Vec<_> = evaluations
            .iter()
            .filter(|e| e.area_overhead <= scenario.area_budget)
            .collect();
        if let Some(best) = within.iter().max_by(|a, b| {
            a.saturation_throughput
                .partial_cmp(&b.saturation_throughput)
                .expect("finite")
        }) {
            let latency_rank = within
                .iter()
                .filter(|e| e.zero_load_latency < best.zero_load_latency)
                .count()
                + 1;
            println!(
                "Within the {:.0}% area budget: highest throughput = {} \
                 ({:.1}%), latency rank {} of {}\n",
                scenario.area_budget * 100.0,
                best.name,
                best.saturation_throughput * 100.0,
                latency_rank,
                within.len()
            );
        }
        // The widened evaluation: every topology × all seven traffic
        // patterns on the shared sweep engine.
        let rate_points = if fast { 10 } else { 20 };
        if fast {
            scenario.sim = SimConfig::fast_test();
        }
        scenario.sim.alloc = alloc;
        scenario.sim.faults = shg_bench::fault_plan_from_args();
        let topologies = named_topologies(&scenario);
        let result = scenario_sweep(
            &scenario,
            &toolchain.model_options,
            &topologies,
            rate_points,
            shg_bench::sweep::route_form_from_args(),
        );
        println!(
            "Seven-pattern simulated sweep ({} points, resolution {:.0}%, \
             hot-spot grid log-extended down to 1%):\n",
            result.points.len(),
            100.0 / rate_points as f64
        );
        println!("{}", pattern_saturation_table(&result, 0.05));
    }
}
