//! Related-work experiment (Section VI): sparse Hamming graphs are a
//! superset of Ruche networks and offer a more fine-grained adjustment of
//! the cost-performance trade-off.
//!
//! This harness enumerates *every* Ruche configuration (one skip factor
//! per grid), compares the best one within the area budget against the
//! customized sparse Hamming graph, and then puts both head-to-head
//! across all seven traffic patterns on the shared sweep engine.
//!
//! Run with: `cargo run --release -p shg-bench --bin ruche_comparison --
//! [--scenario a] [--alloc request-queue|full-scan]
//! [--shard i/N] [--resume journal.jsonl] [--cache <dir>]
//!  [--backend per-cell|reuse|batched|auto] [--lanes K] [--progress]`
//!
//! The head-to-head sweep runs at 6.25% rate resolution (tightened
//! from 12.5% once request-driven allocation made Phase C cheap);
//! measured runtime ≈ 17 s on one core (scales with cores via rayon).

use shg_bench::arg_value;
use shg_bench::sweep::{annotated_experiment, pattern_saturation_table, TopologyCache};
use shg_core::{customize, DesignGoals, PerformanceMode, Scenario, Toolchain};
use shg_floorplan::ModelOptions;
use shg_sim::{SimConfig, SweepSpec};
use shg_topology::{generators, Topology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = arg_value("--scenario").unwrap_or_else(|| "a".to_owned());
    let scenario =
        Scenario::by_name(&which).ok_or_else(|| format!("unknown scenario '{which}'"))?;
    let toolchain = Toolchain {
        model_options: ModelOptions {
            cell_scale: 4.0,
            ..ModelOptions::default()
        },
        mode: PerformanceMode::Analytic,
        ..Toolchain::default()
    };
    let grid = scenario.params.grid;
    let budget = scenario.area_budget;
    println!(
        "=== Ruche vs. sparse Hamming, scenario ({}) — budget {:.0}% ===\n",
        scenario.name,
        budget * 100.0
    );
    println!(
        "{:<30} {:>11} {:>12} {:>11}",
        "Configuration", "AreaOvh[%]", "ZLL[cycles]", "SatThr[%]"
    );
    println!("{}", "-".repeat(68));
    // Every Ruche configuration: a single factor 2 ≤ ℓ < min(R, C).
    let max_factor = grid.rows().min(grid.cols());
    let mut best_ruche: Option<(u16, shg_core::Evaluation)> = None;
    for factor in 2..max_factor {
        let ruche = generators::ruche(grid, factor)?;
        let eval = toolchain.evaluate(&scenario.params, &ruche)?;
        println!(
            "{:<30} {:>11.1} {:>12.1} {:>11.1}",
            format!("Ruche factor {factor}"),
            eval.area_overhead * 100.0,
            eval.zero_load_latency,
            eval.saturation_throughput * 100.0,
        );
        if eval.area_overhead <= budget
            && best_ruche
                .as_ref()
                .map(|(_, b)| eval.saturation_throughput > b.saturation_throughput)
                .unwrap_or(true)
        {
            best_ruche = Some((factor, eval));
        }
    }
    // The customized SHG.
    let trace = customize(
        &toolchain,
        &scenario.params,
        DesignGoals {
            area_budget: budget,
        },
    )?;
    let best_shg = trace.best();
    println!(
        "{:<30} {:>11.1} {:>12.1} {:>11.1}",
        best_shg.config.to_string(),
        best_shg.evaluation.area_overhead * 100.0,
        best_shg.evaluation.zero_load_latency,
        best_shg.evaluation.saturation_throughput * 100.0,
    );
    println!();
    let Some((factor, ruche)) = best_ruche else {
        println!("No Ruche configuration fits the budget.");
        return Ok(());
    };
    println!(
        "Best Ruche within budget: factor {factor} at {:.1}% throughput.",
        ruche.saturation_throughput * 100.0
    );
    println!(
        "Customized SHG: {:.1}% throughput — the superset's extra degrees\n\
         of freedom ({} Ruche configs vs 2^(R+C-4) = {} SHG configs) let it\n\
         exploit the budget more precisely.",
        best_shg.evaluation.saturation_throughput * 100.0,
        max_factor.saturating_sub(2),
        shg_core::SparseHammingConfig::design_space_size(grid.rows(), grid.cols()),
    );
    // Head-to-head across all seven patterns on the shared sweep engine
    // (the analytic ranking above is uniform-random only).
    let contenders: Vec<(String, Topology)> = vec![
        (
            format!("Ruche factor {factor}"),
            generators::ruche(grid, factor)?,
        ),
        (best_shg.config.to_string(), best_shg.config.build()),
    ];
    let spec = SweepSpec::new(SimConfig {
        alloc: shg_bench::alloc_policy_from_args(),
        ..SimConfig::fast_test()
    })
    .linear_rates(16, 1.0)
    .all_patterns()
    .default_hotspot_low_rates();
    let mut cache = TopologyCache::new();
    let mut experiment = annotated_experiment(
        &scenario.params,
        &toolchain.model_options,
        &mut cache,
        &contenders,
        spec,
        shg_bench::sweep::route_form_from_args(),
    )
    .unwrap_or_else(|e| shg_bench::cli_error(e));
    let result = shg_bench::sweep::run_experiment(&mut experiment);
    println!(
        "\nSeven-pattern head-to-head (simulated, resolution 6.25%):\n\n{}",
        pattern_saturation_table(&result, 0.05)
    );
    Ok(())
}
