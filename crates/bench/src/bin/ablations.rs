//! A1/A2/A3 — ablations of the model's and simulator's design choices:
//!
//! * **A1 — port placement** (design principle ❷, OPP): optimized
//!   one-port-per-face placement vs. all ports crowding the north face.
//! * **A2 — detailed routing** (model step 5): collision-aware A* vs.
//!   congestion-blind shortest paths.
//! * **A3 — simulator scheduling**: the active-set core vs. the
//!   exhaustive full scan — identical outcomes, measured speedup at low
//!   load (the regime the sweep engine lives in).
//! * **A4 — injection scheduling**: the event-driven injection calendar
//!   vs. its exhaustive per-cycle scan reference on the same per-tile
//!   RNG streams — identical outcomes, measured Phase A speedup.
//! * **A5 — allocator scheduling**: request-driven VC/switch allocation
//!   vs. the exhaustive port × VC scan — identical outcomes, measured
//!   allocation-phase speedup on a low-radix mesh and the high-radix
//!   flattened butterfly.
//!
//! Run with: `cargo run --release -p shg-bench --bin ablations --
//! [--alloc request-queue|full-scan]` (the flag selects the allocator
//! used by the *other* ablations; A5 always compares both).

use std::time::Instant;

use shg_bench::{drive_injection_phase, profile_allocation_phase};
use shg_core::Scenario;
use shg_floorplan::{predict, DetailedRouting, ModelOptions, PortPlacement};
use shg_sim::{InjectionPolicy, Network, ScanPolicy, SimConfig, TrafficPattern};
use shg_topology::{generators, routing, Grid};
use shg_units::Cycles;

fn main() {
    let scenario = Scenario::knc_a();
    let shg = scenario.shg.build();
    println!(
        "Ablations on scenario (a), topology {} ({} links)\n",
        scenario.shg,
        shg.num_links()
    );

    println!("--- A1: port placement (❷ OPP) ---");
    println!(
        "{:<14} {:>12} {:>14} {:>12} {:>12}",
        "Placement", "AreaOvh[%]", "MeanLink[cyc]", "MaxLink", "Collisions"
    );
    for (name, placement) in [
        ("optimized", PortPlacement::Optimized),
        ("north-only", PortPlacement::NorthOnly),
    ] {
        let options = ModelOptions {
            port_placement: placement,
            ..ModelOptions::default()
        };
        let p = predict(&scenario.params, &shg, &options);
        println!(
            "{:<14} {:>12.1} {:>14.2} {:>12} {:>12}",
            name,
            p.estimates.area_overhead * 100.0,
            p.estimates.mean_link_latency(),
            p.estimates.max_link_latency().value(),
            p.estimates.collisions,
        );
    }
    println!(
        "Expected: the north-only anti-pattern (ring-style placement the\n\
         paper calls out) inflates wire lengths and channel congestion.\n"
    );

    println!("--- A2: detailed routing (model step 5) ---");
    println!(
        "{:<18} {:>12} {:>14} {:>12}",
        "Router", "Collisions", "MeanLink[cyc]", "MaxLink"
    );
    for (name, mode) in [
        ("collision-aware", DetailedRouting::CollisionAware),
        ("congestion-blind", DetailedRouting::CongestionBlind),
    ] {
        let options = ModelOptions {
            detailed_routing: mode,
            ..ModelOptions::default()
        };
        let p = predict(&scenario.params, &shg, &options);
        println!(
            "{:<18} {:>12} {:>14.2} {:>12}",
            name,
            p.estimates.collisions,
            p.estimates.mean_link_latency(),
            p.estimates.max_link_latency().value(),
        );
    }
    println!(
        "Expected: the collision-aware heuristic trades slightly longer\n\
         detours for fewer over-capacity cells — the paper's step-5 goal\n\
         (\"reduce the number of collisions and the link lengths\").\n"
    );

    println!("--- A3: simulator scheduling (active set vs full scan) ---");
    let mesh = generators::mesh(Grid::new(16, 16));
    let routes = routing::default_routes(&mesh).expect("mesh routes");
    let lats = vec![Cycles::one(); mesh.num_links()];
    let config = SimConfig {
        warmup: 1_000,
        measure: 4_000,
        drain_limit: 10_000,
        alloc: shg_bench::alloc_policy_from_args(),
        ..SimConfig::default()
    };
    let rate = 0.01; // Zero-load regime: most routers idle most cycles.
    let time = |policy: ScanPolicy| {
        let mut network = Network::new(&mesh, &routes, &lats, config.clone());
        let start = Instant::now();
        let outcome = network.run_with_policy(rate, TrafficPattern::UniformRandom, policy);
        (start.elapsed(), outcome)
    };
    let (full_time, full_outcome) = time(ScanPolicy::FullScan);
    let (active_time, active_outcome) = time(ScanPolicy::ActiveSet);
    assert_eq!(
        active_outcome, full_outcome,
        "scheduling must not change results"
    );
    println!(
        "16x16 mesh, rate {rate}: full scan {:.1} ms, active set {:.1} ms \
         → {:.2}x speedup (identical outcomes, {} packets)\n",
        full_time.as_secs_f64() * 1e3,
        active_time.as_secs_f64() * 1e3,
        full_time.as_secs_f64() / active_time.as_secs_f64(),
        active_outcome.measured_packets,
    );

    println!("--- A4: injection scheduling (event-driven vs per-cycle scan) ---");
    // Outcomes must be bit-identical on real runs…
    let run_with = |injection: InjectionPolicy| {
        let config = SimConfig {
            injection,
            ..config.clone()
        };
        Network::new(&mesh, &routes, &lats, config).run(rate, TrafficPattern::UniformRandom)
    };
    assert_eq!(
        run_with(InjectionPolicy::EventDriven),
        run_with(InjectionPolicy::PerCycleScan),
        "injection scheduling must not change results"
    );
    // …while Phase A in isolation shows the calendar's win (whole runs
    // at low load are dominated by Phases B/C, identical either way).
    let cycles = 5_000u64;
    let packet_prob = rate / f64::from(config.packet_len);
    let phase_a = |injection: InjectionPolicy| {
        drive_injection_phase(injection, config.seed, mesh.grid(), packet_prob, cycles)
    };
    let (event_time, event_arrivals) = phase_a(InjectionPolicy::EventDriven);
    let (scan_time, scan_arrivals) = phase_a(InjectionPolicy::PerCycleScan);
    assert_eq!(event_arrivals, scan_arrivals, "same streams, same arrivals");
    println!(
        "{} tiles, rate {rate}, {cycles} cycles of Phase A: per-cycle scan \
         {:.2} ms, event-driven {:.2} ms → {:.1}x (identical arrival schedules)\n",
        mesh.num_tiles(),
        scan_time.as_secs_f64() * 1e3,
        event_time.as_secs_f64() * 1e3,
        scan_time.as_secs_f64() / event_time.as_secs_f64(),
    );

    println!("--- A5: allocator scheduling (request queue vs port × VC scan) ---");
    // The allocation-phase cost is what the request queue attacks; the
    // win grows with router radix (the flattened butterfly's routers
    // have ~8x the mesh's ports, so the scan has ~8x the slots). The
    // measurement protocol (alternating profiled runs, outcomes
    // asserted identical) is shared with the Criterion headline and
    // the CI perf-smoke gate.
    for (name, topology) in [
        ("16x16 mesh", generators::mesh(Grid::new(16, 16))),
        (
            "16x16 flattened butterfly",
            generators::flattened_butterfly(Grid::new(16, 16)),
        ),
    ] {
        let sample = profile_allocation_phase(&topology, &config, rate, 1)[0];
        println!(
            "{name}, rate {rate}: allocation phase — full scan {:.1} ms, \
             request queue {:.1} ms → {:.1}x (identical outcomes)",
            sample.scan * 1e3,
            sample.sparse * 1e3,
            sample.ratio(),
        );
    }
}
