//! A1/A2 — ablations of the model's design choices:
//!
//! * **A1 — port placement** (design principle ❷, OPP): optimized
//!   one-port-per-face placement vs. all ports crowding the north face.
//! * **A2 — detailed routing** (model step 5): collision-aware A* vs.
//!   congestion-blind shortest paths.
//!
//! Run with: `cargo run --release -p shg-bench --bin ablations`

use shg_core::Scenario;
use shg_floorplan::{predict, DetailedRouting, ModelOptions, PortPlacement};

fn main() {
    let scenario = Scenario::knc_a();
    let shg = scenario.shg.build();
    println!(
        "Ablations on scenario (a), topology {} ({} links)\n",
        scenario.shg,
        shg.num_links()
    );

    println!("--- A1: port placement (❷ OPP) ---");
    println!(
        "{:<14} {:>12} {:>14} {:>12} {:>12}",
        "Placement", "AreaOvh[%]", "MeanLink[cyc]", "MaxLink", "Collisions"
    );
    for (name, placement) in [
        ("optimized", PortPlacement::Optimized),
        ("north-only", PortPlacement::NorthOnly),
    ] {
        let options = ModelOptions {
            port_placement: placement,
            ..ModelOptions::default()
        };
        let p = predict(&scenario.params, &shg, &options);
        println!(
            "{:<14} {:>12.1} {:>14.2} {:>12} {:>12}",
            name,
            p.estimates.area_overhead * 100.0,
            p.estimates.mean_link_latency(),
            p.estimates.max_link_latency().value(),
            p.estimates.collisions,
        );
    }
    println!(
        "Expected: the north-only anti-pattern (ring-style placement the\n\
         paper calls out) inflates wire lengths and channel congestion.\n"
    );

    println!("--- A2: detailed routing (model step 5) ---");
    println!(
        "{:<18} {:>12} {:>14} {:>12}",
        "Router", "Collisions", "MeanLink[cyc]", "MaxLink"
    );
    for (name, mode) in [
        ("collision-aware", DetailedRouting::CollisionAware),
        ("congestion-blind", DetailedRouting::CongestionBlind),
    ] {
        let options = ModelOptions {
            detailed_routing: mode,
            ..ModelOptions::default()
        };
        let p = predict(&scenario.params, &shg, &options);
        println!(
            "{:<18} {:>12} {:>14.2} {:>12}",
            name,
            p.estimates.collisions,
            p.estimates.mean_link_latency(),
            p.estimates.max_link_latency().value(),
        );
    }
    println!(
        "Expected: the collision-aware heuristic trades slightly longer\n\
         detours for fewer over-capacity cells — the paper's step-5 goal\n\
         (\"reduce the number of collisions and the link lengths\")."
    );
}
