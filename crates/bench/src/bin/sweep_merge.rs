//! Merges `sweep_worker` shard journals into the standard `SweepResult`
//! JSON — byte-identical to what a single-process `run_parallel` of the
//! same sweep would have serialized.
//!
//! Run with:
//! `cargo run --release -p shg-bench --bin sweep_merge --
//!  shard1.jsonl shard2.jsonl ... [--out result.json] [--table]`
//!
//! Validation before any output: every journal must carry the same
//! plan fingerprint (same spec, topologies and latencies), no cell may
//! appear twice (overlapping shards), and the union must cover the
//! whole plan (no missing or unfinished shard) — violations name the
//! offending journal and cause.
//!
//! Without `--out` the merged JSON goes to stdout; `--table` prints
//! the human-readable point table to stderr as well.

use shg_bench::{arg_value, cli_error, has_flag};
use shg_sim::sweep::read_journal;
use shg_sim::SweepResult;

const USAGE: &str = "\
Usage: sweep_merge shard1.jsonl shard2.jsonl .. [--out result.json] [--table]

  Validates that every journal carries the same plan fingerprint, that
  no cell appears twice and that the union covers the whole plan, then
  writes the canonical SweepResult JSON — byte-identical to a
  single-process run (a warm `sweep_worker --cache` run included: the
  cell cache changes which cells are simulated, never their bytes).

  --out    write the merged JSON here instead of stdout
  --table  also print the human-readable point table to stderr";

/// Flags whose value must not be mistaken for a journal path.
const VALUE_FLAGS: [&str; 1] = ["--out"];

fn journal_paths() -> Vec<String> {
    let mut paths = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if VALUE_FLAGS.contains(&arg.as_str()) {
            let _ = args.next();
        } else if !arg.starts_with("--") {
            paths.push(arg);
        }
    }
    paths
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if has_flag("--help") {
        println!("{USAGE}");
        return Ok(());
    }
    let paths = journal_paths();
    if paths.is_empty() {
        cli_error("no journals given");
    }
    let mut shards = Vec::new();
    for path in &paths {
        let shard = read_journal(path).unwrap_or_else(|e| cli_error(format!("{path}: {e}")));
        eprintln!(
            "{path}: shard {} — {} cells (fingerprint {:#018x})",
            shard.shard,
            shard.entries.len(),
            shard.fingerprint
        );
        shards.push(shard);
    }
    let merged = SweepResult::merge(shards).unwrap_or_else(|e| cli_error(e));
    eprintln!(
        "merged {} journals → {} points",
        paths.len(),
        merged.points.len()
    );
    if has_flag("--table") {
        eprintln!("\n{}", merged.table());
    }
    let json = merged.to_json();
    match arg_value("--out") {
        Some(out) => {
            std::fs::write(&out, json)?;
            eprintln!("wrote {out}");
        }
        None => println!("{json}"),
    }
    Ok(())
}
