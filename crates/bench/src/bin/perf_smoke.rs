//! CI perf-smoke harness: re-measures the Criterion headline numbers in
//! quick mode, writes them as machine-readable JSON and (optionally)
//! gates against a committed baseline.
//!
//! The gated headlines are **speedup ratios** (sparse scheduler vs. its
//! exhaustive reference, measured back-to-back on the same machine), so
//! they are comparable across CI runner generations; absolute medians
//! are recorded under `info_ms` for trend-watching but never gated —
//! runner hardware varies too much for wall-clock gates.
//!
//! Run with:
//! `cargo run --release -p shg-bench --bin perf_smoke --
//!  [--samples 5] [--out BENCH_smoke.json] [--check BENCH_baseline.json]`
//!
//! `--check` exits non-zero if any headline ratio regressed more than
//! 25% below the baseline (or a baseline headline is missing from the
//! current run). Refresh the committed baseline by copying the `--out`
//! file after an intentional performance change.
//!
//! One deliberate exception to "commit what you measured": the
//! `warm_cache_sweep_speedup` headline (a fully-warm cell cache vs. a
//! cold run) is bound by fixed warm-side costs — the one-time routing
//! -table digest plus entry reads — so its absolute ratio swings
//! across machines (measured here: ~60×). Its committed baseline is a
//! conservative 30× — the gate then fails below 22.5×, which still
//! catches any real regression (a cache that re-simulates even one
//! cell of the grid falls to ~single-digit ratios) without flaking on
//! disk-speed differences. `network_reset_vs_rebuild` is likewise
//! committed at the low end of its measured 5–7× spread, and
//! `batched_vs_percell` (measured ~2.4×) is committed at 2.0× — the
//! design floor for the lane-parallel core on its setup-dominated
//! target workload. `nexthop_route_build` (measured ~28×) is committed
//! at 10× — an order of magnitude on both build time and table bytes
//! is the design floor for the compact form; losing it would mean the
//! next-hop kernels fell back to materializing paths.

use std::fmt::Write as _;

use shg_bench::{
    arg_value, drive_injection_phase, median, profile_allocation_phase, profile_setup_phase,
    AllocationSample, SetupSample,
};
use shg_sim::{
    CellCache, ExecBackend, Experiment, InjectionPolicy, Network, ScanPolicy, SimConfig, SweepSpec,
    TrafficPattern,
};
use shg_topology::routing::RouteForm;
use shg_topology::{generators, routing, Grid, Topology};
use shg_units::Cycles;

/// Allowed relative shortfall of a headline ratio vs. the baseline.
const REGRESSION_TOLERANCE: f64 = 0.25;

/// A measured headline (gated) or info (ungated) entry.
struct Entry {
    name: &'static str,
    median: f64,
}

fn bench_config() -> SimConfig {
    SimConfig {
        warmup: 500,
        measure: 2_000,
        drain_limit: 6_000,
        ..SimConfig::default()
    }
}

/// Median full-run speedup of the active-set scheduler over the full
/// scan (the PR 1 headline) at zero load.
fn scan_policy_headline(samples: usize, info: &mut Vec<Entry>) -> f64 {
    let topology = generators::mesh(Grid::new(16, 16));
    let routes = routing::default_routes(&topology).expect("routes");
    let latencies = vec![Cycles::one(); topology.num_links()];
    let rate = 0.005;
    let run = |policy: ScanPolicy| {
        let mut network = Network::new(&topology, &routes, &latencies, bench_config());
        let start = std::time::Instant::now();
        let outcome = network.run_with_policy(rate, TrafficPattern::UniformRandom, policy);
        (start.elapsed().as_secs_f64(), outcome)
    };
    let _ = run(ScanPolicy::ActiveSet); // warm up
    let mut ratios = Vec::new();
    let mut active_wall = Vec::new();
    for _ in 0..samples {
        let (active, a) = run(ScanPolicy::ActiveSet);
        let (full, b) = run(ScanPolicy::FullScan);
        assert_eq!(a, b, "scan policies must agree");
        ratios.push(full / active);
        active_wall.push(active * 1e3);
    }
    info.push(Entry {
        name: "full_run_mesh16_rate0.005_active_set",
        median: median(active_wall),
    });
    median(ratios)
}

/// Median Phase A speedup of the event calendar over the per-cycle
/// countdown scan (the PR 2 headline).
fn injection_headline(samples: usize, info: &mut Vec<Entry>) -> f64 {
    let grid = Grid::new(16, 16);
    let packet_prob = 0.01 / f64::from(bench_config().packet_len);
    let cycles = 3_000;
    let phase_a = |policy: InjectionPolicy| {
        let (elapsed, arrivals) = drive_injection_phase(policy, 42, grid, packet_prob, cycles);
        (elapsed.as_secs_f64(), arrivals)
    };
    let _ = phase_a(InjectionPolicy::EventDriven); // warm up
    let mut ratios = Vec::new();
    let mut event_wall = Vec::new();
    for _ in 0..samples {
        let (event, a) = phase_a(InjectionPolicy::EventDriven);
        let (scan, b) = phase_a(InjectionPolicy::PerCycleScan);
        assert_eq!(a, b, "same streams, same arrivals");
        ratios.push(scan / event);
        event_wall.push(event * 1e3);
    }
    info.push(Entry {
        name: "injection_phase_256t_rate0.01_event_driven",
        median: median(event_wall),
    });
    median(ratios)
}

/// Median allocation-phase speedup of the request queue over the
/// port × VC scan (this PR's headline), per topology — the same
/// measurement protocol as the Criterion headline and the A5 ablation
/// ([`profile_allocation_phase`]).
fn allocation_headline(
    topology: &Topology,
    samples: usize,
    info_name: &'static str,
    info: &mut Vec<Entry>,
) -> f64 {
    let measured = profile_allocation_phase(topology, &bench_config(), 0.01, samples);
    info.push(Entry {
        name: info_name,
        median: median(measured.iter().map(|s| s.sparse * 1e3).collect()),
    });
    median(measured.iter().map(AllocationSample::ratio).collect())
}

/// Median per-cell setup speedup of `Network::reset` over fresh
/// construction (the batched-backend headline), measured on the
/// high-radix 16×16 flattened butterfly — the shape where per-cell
/// allocation hurts most — via the protocol shared with the
/// `setup_phase` Criterion group ([`profile_setup_phase`]).
fn reset_headline(samples: usize, info: &mut Vec<Entry>) -> f64 {
    let fb = generators::flattened_butterfly(Grid::new(16, 16));
    let measured = profile_setup_phase(&fb, &bench_config(), 0.01, samples);
    info.push(Entry {
        name: "setup_phase_fb16_rate0.01_reset",
        median: median(measured.iter().map(|s| s.reset * 1e3).collect()),
    });
    median(measured.iter().map(SetupSample::ratio).collect())
}

/// Median whole-sweep speedup of a fully-warm cell cache over a cold
/// run (the incremental-sweep headline): each sample runs a small
/// mesh-16×16 grid cold into a fresh cache directory, re-runs it warm,
/// asserts byte-identical JSON and zero warm simulations, and takes
/// the cold/warm wall ratio.
///
/// # Panics
///
/// Panics if the cache directory is unusable or a warm run ever
/// deviates from its cold twin.
fn warm_cache_headline(samples: usize, info: &mut Vec<Entry>) -> f64 {
    let mesh = generators::mesh(Grid::new(16, 16));
    let spec = || {
        SweepSpec::new(bench_config())
            .rates([0.005, 0.01, 0.02])
            .patterns([TrafficPattern::UniformRandom, TrafficPattern::Transpose])
    };
    let root = std::env::temp_dir().join(format!("shg_perf_smoke_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut ratios = Vec::new();
    let mut warm_wall = Vec::new();
    for i in 0..samples {
        let dir = root.join(i.to_string());
        let cached_experiment = || {
            Experiment::new(spec())
                .with_unit_latency_case("mesh", &mesh)
                .expect("mesh routes")
                .with_cache(CellCache::open(&dir).expect("cache dir"))
        };
        let cold_experiment = cached_experiment();
        let start = std::time::Instant::now();
        let cold_result = cold_experiment.run_parallel();
        let cold = start.elapsed().as_secs_f64();
        let warm_experiment = cached_experiment();
        let start = std::time::Instant::now();
        let warm_result = warm_experiment.run_parallel();
        let warm = start.elapsed().as_secs_f64();
        assert_eq!(
            cold_result.to_json(),
            warm_result.to_json(),
            "warm cache changed the sweep bytes"
        );
        let stats = warm_experiment.cache().expect("cache attached").stats();
        assert_eq!(stats.simulated, 0, "warm run must simulate nothing");
        ratios.push(cold / warm);
        warm_wall.push(warm * 1e3);
    }
    let _ = std::fs::remove_dir_all(&root);
    info.push(Entry {
        name: "warm_cache_sweep_mesh16_6cells_warm",
        median: median(warm_wall),
    });
    median(ratios)
}

/// Median single-core sweep throughput of the lane-parallel batched
/// core over the per-cell reference in the setup-dominated regime the
/// `Auto` probe routes to it: short cells — construction far outweighs
/// simulation — on the high-radix 16×16 flattened butterfly, where the
/// per-cell backend pays a fresh ~2 ms `Network::new` for every one of
/// the 32 grid cells while the batched core builds its
/// struct-of-arrays state once per group and recycles lanes through
/// the rest with cheap targeted resets (`reset_lane` clears only what
/// the finished cell touched). Both backends run the same grid on one
/// thread, the JSON is asserted byte-identical, and the headline is
/// the wall ratio. One thread makes this cells-per-core throughput,
/// the quantity a sharded sweep fleet scales by. (Long cells invert
/// the picture — simulation dominates and the shared-sweep overhead
/// of lockstep lanes costs more than setup saves — which is exactly
/// why `Auto` probes before choosing.)
fn batched_headline(samples: usize, info: &mut Vec<Entry>) -> f64 {
    let fb = generators::flattened_butterfly(Grid::new(16, 16));
    let config = SimConfig {
        warmup: 10,
        measure: 30,
        drain_limit: 120,
        ..bench_config()
    };
    let spec = || {
        SweepSpec::new(config.clone())
            .rates([0.002, 0.003, 0.004, 0.005, 0.006, 0.008, 0.01, 0.012])
            .patterns([
                TrafficPattern::UniformRandom,
                TrafficPattern::Transpose,
                TrafficPattern::Tornado,
                TrafficPattern::Reverse,
            ])
    };
    let experiment = |backend: ExecBackend| {
        Experiment::new(spec())
            .with_backend(backend)
            .with_unit_latency_case("fb", &fb)
            .expect("fb routes")
    };
    let per_cell = experiment(ExecBackend::PerCell);
    let batched = experiment(ExecBackend::Batched); // default 8 lanes
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("thread pool builds");
    let _ = batched.run_in_pool(&pool); // warm up
    let mut ratios = Vec::new();
    let mut batched_wall = Vec::new();
    for _ in 0..samples {
        let start = std::time::Instant::now();
        let reference = per_cell.run_in_pool(&pool);
        let per_cell_wall = start.elapsed().as_secs_f64();
        let start = std::time::Instant::now();
        let result = batched.run_in_pool(&pool);
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(
            reference.to_json(),
            result.to_json(),
            "batched backend changed the sweep bytes"
        );
        ratios.push(per_cell_wall / wall);
        batched_wall.push(wall * 1e3);
    }
    info.push(Entry {
        name: "batched_sweep_fb16_32cells_lanes8",
        median: median(batched_wall),
    });
    median(ratios)
}

/// Median advantage of the compact next-hop routing table over the
/// dense all-pairs path store on a 32×32 mesh (1,024 tiles — the size
/// where dense tables start to hurt and the compact form's O(1)
/// kernels pay off): the headline is the **smaller** of the build-time
/// ratio and the table-size ratio, so it only stays green while the
/// compact form wins on both axes. The table-size ratio is
/// deterministic (bytes are a function of the topology alone); the
/// build ratio is measured back-to-back like every other headline.
fn nexthop_route_headline(samples: usize, info: &mut Vec<Entry>) -> f64 {
    let mesh = generators::mesh(Grid::new(32, 32));
    let build = |form: RouteForm| {
        let start = std::time::Instant::now();
        let routes = routing::default_routes_with(&mesh, form).expect("mesh routes");
        (start.elapsed().as_secs_f64(), routes)
    };
    let _ = build(RouteForm::NextHop); // warm up
    let mut ratios = Vec::new();
    let mut compact_wall = Vec::new();
    let mut bytes_ratio = 0.0;
    for _ in 0..samples {
        let (compact, compact_routes) = build(RouteForm::NextHop);
        let (dense, dense_routes) = build(RouteForm::Dense);
        assert_eq!(
            compact_routes.num_vc_classes(),
            dense_routes.num_vc_classes(),
            "route forms must agree"
        );
        bytes_ratio = dense_routes.table_bytes() as f64 / compact_routes.table_bytes() as f64;
        ratios.push(dense / compact);
        compact_wall.push(compact * 1e3);
    }
    info.push(Entry {
        name: "nexthop_route_build_mesh32_next_hop",
        median: median(compact_wall),
    });
    median(ratios).min(bytes_ratio)
}

/// Renders the report as JSON (two flat objects of name → median).
fn to_json(samples: usize, headlines: &[Entry], info: &[Entry]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"samples\": {samples},");
    let section = |out: &mut String, label: &str, entries: &[Entry], last: bool| {
        let _ = writeln!(out, "  \"{label}\": {{");
        for (i, e) in entries.iter().enumerate() {
            let comma = if i + 1 == entries.len() { "" } else { "," };
            let _ = writeln!(out, "    \"{}\": {:.3}{comma}", e.name, e.median);
        }
        let _ = writeln!(out, "  }}{}", if last { "" } else { "," });
    };
    section(&mut out, "headlines", headlines, false);
    section(&mut out, "info_ms", info, true);
    out.push_str("}\n");
    out
}

/// Extracts the `name → value` pairs of one JSON section written by
/// [`to_json`], via the vendored `serde_json` value parser (the same
/// reading path the sweep journals use).
///
/// # Errors
///
/// Fails if the text is not JSON or the section is not a flat object
/// of numbers.
fn parse_section(text: &str, label: &str) -> Result<Vec<(String, f64)>, String> {
    let value: serde_json::Value = text
        .parse()
        .map_err(|e: serde_json::ParseError| e.to_string())?;
    let section = value
        .get(label)
        .and_then(serde_json::Value::as_object)
        .ok_or_else(|| format!("no '{label}' object in the baseline"))?;
    section
        .iter()
        .map(|(name, v)| {
            v.as_f64()
                .map(|v| (name.clone(), v))
                .ok_or_else(|| format!("'{label}.{name}' is not a number"))
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let samples: usize = arg_value("--samples").map_or(5, |v| v.parse().expect("samples"));
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_smoke.json".to_owned());

    let mut info = Vec::new();
    let headlines = vec![
        Entry {
            name: "scan_policy_speedup_mesh16_rate0.005",
            median: scan_policy_headline(samples, &mut info),
        },
        Entry {
            name: "injection_phase_speedup_256t_rate0.01",
            median: injection_headline(samples, &mut info),
        },
        Entry {
            name: "allocation_phase_speedup_mesh16_rate0.01",
            median: allocation_headline(
                &generators::mesh(Grid::new(16, 16)),
                samples,
                "allocation_phase_mesh16_rate0.01_request_queue",
                &mut info,
            ),
        },
        Entry {
            name: "allocation_phase_speedup_fb16_rate0.01",
            median: allocation_headline(
                &generators::flattened_butterfly(Grid::new(16, 16)),
                samples,
                "allocation_phase_fb16_rate0.01_request_queue",
                &mut info,
            ),
        },
        Entry {
            name: "network_reset_vs_rebuild",
            median: reset_headline(samples, &mut info),
        },
        Entry {
            name: "warm_cache_sweep_speedup",
            median: warm_cache_headline(samples, &mut info),
        },
        Entry {
            name: "batched_vs_percell",
            median: batched_headline(samples, &mut info),
        },
        Entry {
            name: "nexthop_route_build",
            median: nexthop_route_headline(samples, &mut info),
        },
    ];

    let json = to_json(samples, &headlines, &info);
    std::fs::write(&out_path, &json)?;
    println!("perf smoke ({samples} samples per headline) → {out_path}\n{json}");

    let Some(baseline_path) = arg_value("--check") else {
        return Ok(());
    };
    let baseline = std::fs::read_to_string(&baseline_path)?;
    let mut failures = Vec::new();
    for (name, expected) in parse_section(&baseline, "headlines")? {
        match headlines.iter().find(|e| e.name == name) {
            None => failures.push(format!("{name}: in baseline but not measured")),
            Some(entry) => {
                let floor = expected * (1.0 - REGRESSION_TOLERANCE);
                if entry.median < floor {
                    failures.push(format!(
                        "{name}: {:.2}x is more than {:.0}% below the baseline {expected:.2}x \
                         (floor {floor:.2}x)",
                        entry.median,
                        REGRESSION_TOLERANCE * 100.0
                    ));
                } else {
                    println!(
                        "ok: {name} = {:.2}x (baseline {expected:.2}x, floor {floor:.2}x)",
                        entry.median
                    );
                }
            }
        }
    }
    if failures.is_empty() {
        println!("perf smoke green vs {baseline_path}");
        Ok(())
    } else {
        for failure in &failures {
            eprintln!("PERF REGRESSION — {failure}");
        }
        Err(format!("{} headline(s) regressed", failures.len()).into())
    }
}
