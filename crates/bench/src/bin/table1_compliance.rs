//! E1 — regenerates Table I: compliance of NoC topologies with the four
//! design principles, computed from topology structure.
//!
//! Run with: `cargo run --release -p shg-bench --bin table1_compliance`

use shg_core::{report, Scenario, SparseHammingConfig};
use shg_topology::compliance;

fn main() {
    for (grid_name, scenario) in [
        ("8x8 (64 tiles)", Scenario::knc_a()),
        ("16x8 (128 tiles)", Scenario::knc_c()),
    ] {
        let grid = scenario.params.grid;
        let shg = scenario.shg.build();
        println!("=== Table I — computed compliance matrix, {grid_name} ===");
        println!("(SHG instance: {})\n", scenario.shg);
        let rows = compliance::table1(grid, Some(&shg));
        println!("{}", report::compliance_table(&rows));
        // The paper reports intervals for the SHG family; print the two
        // extremes for reference.
        let mesh_row =
            compliance::analyze(&SparseHammingConfig::mesh(grid.rows(), grid.cols()).build());
        let fb_row = compliance::analyze(
            &SparseHammingConfig::flattened_butterfly(grid.rows(), grid.cols()).build(),
        );
        println!(
            "SHG family intervals: radix [{}, {}], diameter [{}, {}], configurations {}\n",
            mesh_row.router_radix,
            fb_row.router_radix,
            fb_row.diameter,
            mesh_row.diameter,
            SparseHammingConfig::design_space_size(grid.rows(), grid.cols()),
        );
    }
    println!(
        "Paper reference (Table I): ring radix 2 / diameter RC/2; mesh 4 / R+C-2;\n\
         torus and folded torus 4 / R/2+C/2; hypercube log2(RC) / log2(RC);\n\
         SlimNoC ~sqrt(RC) / 2; flattened butterfly R+C-2 / 2;\n\
         sparse Hamming graph [4, R+C-2] / [2, R+C-2] with 2^(R+C-4) configurations."
    );
}
