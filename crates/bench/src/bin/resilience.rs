//! Degraded-mode resilience sweep: kill a growing fraction of the
//! fabric mid-run and measure what saturation throughput survives.
//!
//! Run with:
//! `cargo run --release -p shg-bench --bin resilience --
//!  [--fractions 0,0.02,0.05,0.1] [--kill links|routers]
//!  [--policy drop|drain] [--seed N] [--kill-cycle C]
//!  [--rate-points N] [--full] [--shg <spec>] [--json]
//!  [--alloc request-queue|full-scan] [--backend per-cell|reuse|batched|auto]
//!  [--lanes K] [--cache <dir>] [--progress]`
//!
//! Compares mesh, flattened butterfly and an SHG (default
//! `shg:sr=4:sc=4`, override with `--shg`) on a 16x16 grid under
//! uniform-random traffic. For each kill fraction a deterministic
//! kill set — links (default) or routers, sampled by a splitmix64
//! stream from `--seed` so re-runs and re-plots see the same degraded
//! fabric — strikes at `--kill-cycle`. The default lands a quarter of
//! the way into the measurement window, so each run both drops
//! tracked in-flight packets (the accounting columns are live) and
//! spends most of the window on the surviving subgraph; pass
//! `--kill-cycle` at or below the warmup length to measure the purely
//! degraded fabric instead. Routes are recomputed over the surviving
//! subgraph at the fault epoch by the simulator; packets whose source
//! and destination end up in different surviving components are
//! counted as unroutable rather than offered.
//!
//! Each row of the report carries the fault accounting and checks the
//! conservation law the simulator guarantees: packets injected in the
//! measurement window = delivered + dropped (+ in flight, only on
//! unstable points). A violated row aborts the run — the table is
//! only worth reading if the accounting adds up.
//!
//! Windows default to the fast-test config (seconds); `--full` runs
//! the load-curve windows (warmup 3000 / measure 6000) for
//! publication-grade curves.

use shg_bench::{arg_value, cli_error, has_flag};
use shg_sim::{
    Experiment, FaultEvent, FaultKind, FaultPlan, InFlightPolicy, SimConfig, SweepResult,
    SweepSpec, TrafficPattern,
};
use shg_topology::{generators::GeneratorSpec, Grid, Topology};

/// splitmix64 step — the same generator the sweep engine uses for
/// traffic, reused here so kill sets are stable across platforms.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The first `count` entries of a seeded Fisher-Yates shuffle of
/// `0..n` — a uniform sample without replacement, deterministic in
/// `seed`.
fn sample_indices(count: usize, n: usize, seed: u64) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n).collect();
    let mut state = seed;
    for i in 0..count.min(n) {
        let j = i + (splitmix64(&mut state) as usize) % (n - i);
        pool.swap(i, j);
    }
    pool.truncate(count.min(n));
    pool
}

/// The deterministic kill set for one topology at one fraction.
fn kill_plan(
    topology: &Topology,
    fraction: f64,
    kill_routers: bool,
    cycle: u64,
    policy: InFlightPolicy,
    seed: u64,
) -> FaultPlan {
    let population = if kill_routers {
        topology.num_tiles()
    } else {
        topology.num_links()
    };
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let count = (fraction * population as f64).round() as usize;
    let events = sample_indices(count, population, seed)
        .into_iter()
        .map(|i| FaultEvent {
            cycle,
            kill: if kill_routers {
                FaultKind::Router(i as u32)
            } else {
                let link = topology.links()[i];
                FaultKind::Link(link.a.index() as u32, link.b.index() as u32)
            },
        })
        .collect();
    FaultPlan { events, policy }
}

/// One (topology, fraction) row: degraded saturation plus the summed
/// fault accounting over every swept point.
struct Row {
    topology: String,
    fraction: f64,
    kills: usize,
    saturation: Option<f64>,
    injected: u64,
    delivered: u64,
    dropped: u64,
    unroutable: u64,
    in_flight: u64,
}

/// Sums the accounting over a single-case sweep and enforces the
/// conservation law per point.
fn account(result: &SweepResult, config: &SimConfig, nodes: f64, row: &mut Row) {
    for point in &result.points {
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let offered_flits =
            (point.outcome.offered_rate * config.measure as f64 * nodes).round() as u64;
        assert_eq!(
            offered_flits % u64::from(config.packet_len),
            0,
            "offered flits round-trip to whole packets"
        );
        let injected = offered_flits / u64::from(config.packet_len);
        let delivered = point.outcome.measured_packets;
        let dropped = point.outcome.faults.dropped_packets;
        let accounted = delivered + dropped;
        assert!(
            accounted <= injected && (accounted == injected) == point.outcome.stable,
            "{} @ rate {:.2}: accounting broken — injected {injected}, \
             delivered {delivered}, dropped {dropped}, stable {}",
            point.case,
            point.rate,
            point.outcome.stable
        );
        row.injected += injected;
        row.delivered += delivered;
        row.dropped += dropped;
        row.unroutable += point.outcome.faults.unroutable_packets;
        row.in_flight += injected - accounted;
    }
}

fn parse_fractions(spec: &str) -> Result<Vec<f64>, String> {
    spec.split(',')
        .map(|item| {
            let f: f64 = item
                .trim()
                .parse()
                .map_err(|e| format!("kill fraction '{item}': {e}"))?;
            if !(0.0..1.0).contains(&f) {
                return Err(format!("kill fraction '{item}': must be in [0, 1)"));
            }
            Ok(f)
        })
        .collect()
}

fn main() {
    let grid = Grid::new(16, 16);
    let fractions = arg_value("--fractions").map_or_else(
        || vec![0.0, 0.02, 0.05, 0.1],
        |spec| parse_fractions(&spec).unwrap_or_else(|e| cli_error(format!("--fractions: {e}"))),
    );
    let kill_routers = match arg_value("--kill").as_deref() {
        None | Some("links") => false,
        Some("routers") => true,
        Some(other) => cli_error(format!("--kill '{other}': use links|routers")),
    };
    let policy = match arg_value("--policy").as_deref() {
        None | Some("drop") => InFlightPolicy::Drop,
        Some("drain") => InFlightPolicy::Drain,
        Some(other) => cli_error(format!("--policy '{other}': use drop|drain")),
    };
    let seed = arg_value("--seed").map_or(42, |text| {
        text.parse()
            .unwrap_or_else(|e| cli_error(format!("--seed {text}: {e}")))
    });
    let mut config = if has_flag("--full") {
        SimConfig {
            warmup: 3_000,
            measure: 6_000,
            drain_limit: 20_000,
            ..SimConfig::default()
        }
    } else {
        SimConfig::fast_test()
    };
    config.alloc = shg_bench::alloc_policy_from_args();
    let kill_cycle = arg_value("--kill-cycle").map_or(config.warmup + config.measure / 4, |text| {
        text.parse()
            .unwrap_or_else(|e| cli_error(format!("--kill-cycle {text}: {e}")))
    });
    let rate_points = arg_value("--rate-points").map_or(10, |text| {
        text.parse::<usize>()
            .unwrap_or_else(|e| cli_error(format!("--rate-points {text}: {e}")))
    });
    let shg_spec = arg_value("--shg").unwrap_or_else(|| "shg:sr=4:sc=4".to_owned());
    let specs = [
        ("mesh".to_owned(), "mesh".to_owned()),
        ("fb".to_owned(), "fb".to_owned()),
        (shg_spec.clone(), shg_spec),
    ];
    let topologies: Vec<(String, Topology)> = specs
        .into_iter()
        .map(|(name, spec)| {
            let generator: GeneratorSpec = spec
                .parse()
                .unwrap_or_else(|e| cli_error(format!("--shg '{spec}': {e}")));
            let topology = generator
                .build(grid)
                .unwrap_or_else(|e| cli_error(format!("--shg '{spec}' on {grid}: {e}")));
            (name, topology)
        })
        .collect();

    let mut rows: Vec<Row> = Vec::new();
    for (name, topology) in &topologies {
        for &fraction in &fractions {
            let plan = kill_plan(topology, fraction, kill_routers, kill_cycle, policy, seed);
            plan.validate(topology)
                .unwrap_or_else(|e| cli_error(format!("kill set for {name}: {e}")));
            let kills = plan.events.len();
            let mut cell = config.clone();
            cell.faults = plan;
            // Low-rate extension below the linear grid: the mesh
            // saturates near 12% of injection capacity, under the
            // first linear step at the default resolution.
            #[allow(clippy::cast_precision_loss)]
            let step = 1.0 / rate_points as f64;
            let mut rates: Vec<f64> = [0.0125, 0.025, 0.05, 0.075]
                .into_iter()
                .filter(|&r| r < step)
                .collect();
            #[allow(clippy::cast_precision_loss)]
            rates.extend((1..=rate_points).map(|i| i as f64 * step));
            let spec = SweepSpec::new(cell.clone()).rates(rates);
            let mut experiment = Experiment::new(spec)
                .with_unit_latency_case(name.clone(), topology)
                .unwrap_or_else(|e| cli_error(format!("routing {name}: {e}")));
            let result = shg_bench::sweep::run_experiment(&mut experiment);
            let mut row = Row {
                topology: name.clone(),
                fraction,
                kills,
                saturation: result.saturation_estimate(name, TrafficPattern::UniformRandom, 0.05),
                injected: 0,
                delivered: 0,
                dropped: 0,
                unroutable: 0,
                in_flight: 0,
            };
            #[allow(clippy::cast_precision_loss)]
            account(&result, &cell, topology.num_tiles() as f64, &mut row);
            rows.push(row);
        }
    }

    if has_flag("--json") {
        let entries: Vec<String> = rows
            .iter()
            .map(|row| {
                format!(
                    "{{\"topology\":\"{}\",\"fraction\":{},\"kills\":{},\
                     \"saturation\":{},\"injected\":{},\"delivered\":{},\
                     \"dropped\":{},\"unroutable\":{},\"in_flight\":{}}}",
                    row.topology,
                    row.fraction,
                    row.kills,
                    row.saturation
                        .map_or_else(|| "null".to_owned(), |s| format!("{s}")),
                    row.injected,
                    row.delivered,
                    row.dropped,
                    row.unroutable,
                    row.in_flight
                )
            })
            .collect();
        println!("[{}]", entries.join(","));
        return;
    }

    println!(
        "Resilience sweep on {grid}: {} kills at cycle {kill_cycle} ({:?} policy, seed {seed})",
        if kill_routers { "router" } else { "link" },
        policy
    );
    println!(
        "{:<14} {:>9} {:>6} {:>11} {:>10} {:>10} {:>9} {:>11} {:>10}",
        "topology",
        "killed%",
        "kills",
        "saturation",
        "injected",
        "delivered",
        "dropped",
        "unroutable",
        "in-flight"
    );
    for row in &rows {
        println!(
            "{:<14} {:>8.1}% {:>6} {:>11} {:>10} {:>10} {:>9} {:>11} {:>10}",
            row.topology,
            row.fraction * 100.0,
            row.kills,
            row.saturation
                .map_or_else(|| "< grid".to_owned(), |s| format!("{:.1}%", s * 100.0)),
            row.injected,
            row.delivered,
            row.dropped,
            row.unroutable,
            row.in_flight
        );
    }
    println!(
        "\nEvery row satisfies injected = delivered + dropped (+ in-flight \
         on unstable points); unroutable injections were never offered."
    );
}
