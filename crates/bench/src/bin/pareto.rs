//! Exhaustive design-space exploration: evaluates *every* sparse Hamming
//! configuration of a small grid and prints the cost/performance Pareto
//! frontier — the quantitative version of the paper's claim that the
//! topology's trade-off is customizable (Section III).
//!
//! The space has `2^(R+C−4)` points, so this is feasible for small grids;
//! the default 6×6 grid has 256 configurations. Ranking uses the fast
//! analytic toolchain fanned out on the rayon pool; the frontier is then
//! re-checked in simulation across all seven traffic patterns on the
//! shared sweep engine.
//!
//! Run with: `cargo run --release -p shg-bench --bin pareto --
//! [--rows 6] [--cols 6] [--alloc request-queue|full-scan]
//! [--shard i/N] [--resume journal.jsonl] [--cache <dir>]
//!  [--backend per-cell|reuse|batched|auto] [--lanes K] [--progress]`
//!
//! The frontier validation sweeps at 10% rate resolution (tightened
//! from 16.7% once request-driven allocation made Phase C cheap);
//! measured runtime ≈ 17 s on one core for the default 6×6 grid.

use rayon::prelude::*;

use shg_bench::arg_value;
use shg_bench::sweep::{annotated_experiment, pattern_saturation_table, TopologyCache};
use shg_core::{Evaluation, PerformanceMode, Scenario, SparseHammingConfig, Toolchain};
use shg_floorplan::ModelOptions;
use shg_sim::{SimConfig, SweepSpec};
use shg_topology::Topology;

/// Enumerates every subset pair (SR, SC) for the grid.
fn all_configs(rows: u16, cols: u16) -> Vec<SparseHammingConfig> {
    let sr_values: Vec<u16> = (2..cols).collect();
    let sc_values: Vec<u16> = (2..rows).collect();
    let mut configs = Vec::new();
    for sr_mask in 0u32..(1 << sr_values.len()) {
        for sc_mask in 0u32..(1 << sc_values.len()) {
            let sr: Vec<u16> = sr_values
                .iter()
                .enumerate()
                .filter(|(i, _)| sr_mask & (1 << i) != 0)
                .map(|(_, &x)| x)
                .collect();
            let sc: Vec<u16> = sc_values
                .iter()
                .enumerate()
                .filter(|(i, _)| sc_mask & (1 << i) != 0)
                .map(|(_, &x)| x)
                .collect();
            configs
                .push(SparseHammingConfig::new(rows, cols, sr, sc).expect("enumerated in range"));
        }
    }
    configs
}

/// `true` if `a` dominates `b`: no worse in area, throughput and latency,
/// strictly better in at least one.
fn dominates(a: &Evaluation, b: &Evaluation) -> bool {
    let no_worse = a.area_overhead <= b.area_overhead
        && a.saturation_throughput >= b.saturation_throughput
        && a.zero_load_latency <= b.zero_load_latency;
    let strictly = a.area_overhead < b.area_overhead
        || a.saturation_throughput > b.saturation_throughput
        || a.zero_load_latency < b.zero_load_latency;
    no_worse && strictly
}

fn main() {
    let rows: u16 = arg_value("--rows").map_or(6, |v| v.parse().expect("rows"));
    let cols: u16 = arg_value("--cols").map_or(6, |v| v.parse().expect("cols"));
    // Scenario (a)'s architecture, shrunk to the requested grid.
    let mut scenario = Scenario::knc_a();
    scenario.params.grid = shg_topology::Grid::new(rows, cols);
    let toolchain = Toolchain {
        model_options: ModelOptions {
            cell_scale: 6.0,
            ..ModelOptions::default()
        },
        mode: PerformanceMode::Analytic,
        ..Toolchain::default()
    };
    let configs = all_configs(rows, cols);
    println!(
        "=== Design-space exploration: {rows}x{cols}, {} configurations ===\n",
        configs.len()
    );
    // Rank every configuration on the rayon pool (analytic toolchain).
    let evaluated: Vec<(SparseHammingConfig, Evaluation)> = configs
        .par_iter()
        .map(|config| {
            let eval = toolchain
                .evaluate(&scenario.params, &config.build())
                .expect("SHG evaluates");
            (config.clone(), eval)
        })
        .collect();
    // Pareto frontier.
    let mut frontier: Vec<&(SparseHammingConfig, Evaluation)> = evaluated
        .iter()
        .filter(|(_, e)| !evaluated.iter().any(|(_, other)| dominates(other, e)))
        .collect();
    frontier.sort_by(|a, b| {
        a.1.area_overhead
            .partial_cmp(&b.1.area_overhead)
            .expect("finite")
    });
    println!(
        "{:<34} {:>11} {:>12} {:>11}",
        "Pareto-optimal configuration", "AreaOvh[%]", "ZLL[cycles]", "SatThr[%]"
    );
    println!("{}", "-".repeat(72));
    for (config, eval) in &frontier {
        println!(
            "{:<34} {:>11.1} {:>12.1} {:>11.1}",
            config.to_string(),
            eval.area_overhead * 100.0,
            eval.zero_load_latency,
            eval.saturation_throughput * 100.0,
        );
    }
    println!(
        "\n{} of {} configurations are Pareto-optimal — the dial the\n\
         customization strategy turns.",
        frontier.len(),
        evaluated.len()
    );
    // Simulated cross-pattern validation of the frontier on the shared
    // sweep engine (fast simulator windows; the analytic ranking above
    // is uniform-random only).
    const MAX_VALIDATED: usize = 8;
    if frontier.len() > MAX_VALIDATED {
        println!(
            "\nValidating the {MAX_VALIDATED} highest-throughput frontier points \
             (of {}) across all seven patterns:",
            frontier.len()
        );
    } else {
        println!("\nValidating the frontier across all seven patterns:");
    }
    let mut validated: Vec<&(SparseHammingConfig, Evaluation)> = frontier.clone();
    validated.sort_by(|a, b| {
        b.1.saturation_throughput
            .partial_cmp(&a.1.saturation_throughput)
            .expect("finite")
    });
    validated.truncate(MAX_VALIDATED);
    let topologies: Vec<(String, Topology)> = validated
        .iter()
        .map(|(config, _)| (config.to_string(), config.build()))
        .collect();
    let spec = SweepSpec::new(SimConfig {
        alloc: shg_bench::alloc_policy_from_args(),
        ..SimConfig::fast_test()
    })
    .linear_rates(10, 1.0)
    .all_patterns()
    .default_hotspot_low_rates();
    let mut cache = TopologyCache::new();
    let mut experiment = annotated_experiment(
        &scenario.params,
        &toolchain.model_options,
        &mut cache,
        &topologies,
        spec,
        shg_bench::sweep::route_form_from_args(),
    )
    .unwrap_or_else(|e| shg_bench::cli_error(e));
    let result = shg_bench::sweep::run_experiment(&mut experiment);
    println!("\n{}", pattern_saturation_table(&result, 0.05));
}
