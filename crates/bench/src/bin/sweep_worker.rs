//! One shard of the standard scenario pattern sweep (the fig6 grid),
//! run to a resumable JSONL journal — the worker half of cross-machine
//! sweep sharding (`sweep_merge` recombines the journals).
//!
//! Run with:
//! `cargo run --release -p shg-bench --bin sweep_worker --
//!  [--scenario a|b|c|d] [--fast] [--rate-points N]
//!  [--alloc request-queue|full-scan]
//!  --shard i/N (--out journal.jsonl | --resume journal.jsonl)
//!  [--progress]`
//!
//! `--out` starts the shard from scratch (truncating any existing
//! file); `--resume` continues an interrupted journal after validating
//! that it was written under the same plan (spec, topologies,
//! latencies — the fingerprint) and shard, recomputing only the
//! missing cells: the finished journal is byte-identical to an
//! uninterrupted run's.
//!
//! `--single-shot result.json` ignores sharding and writes the full
//! `run_parallel` sweep JSON — the reference the CI `shard-smoke` job
//! diffs the merged shards against.
//!
//! Every worker of one sweep must be given the same scenario flags;
//! the journal header's plan fingerprint lets `sweep_merge` reject
//! mismatches instead of silently concatenating different sweeps.

use shg_bench::sweep::{annotated_experiment, scenario_sweep_spec, TopologyCache};
use shg_bench::{arg_value, has_flag, named_topologies};
use shg_core::Scenario;
use shg_floorplan::ModelOptions;
use shg_sim::sweep::run_journaled;
use shg_sim::{ShardSpec, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = arg_value("--scenario").unwrap_or_else(|| "a".to_owned());
    let mut scenario =
        Scenario::by_name(&which).ok_or_else(|| format!("unknown scenario '{which}'"))?;
    let fast = has_flag("--fast");
    // Mirror fig6's pattern-sweep setup exactly, so a sharded worker
    // fleet reproduces the very grid the single-process binary prints.
    let model_options = ModelOptions {
        cell_scale: if fast { 4.0 } else { 2.0 },
        ..ModelOptions::default()
    };
    if fast {
        scenario.sim = SimConfig::fast_test();
    }
    scenario.sim.alloc = shg_bench::alloc_policy_from_args();
    let rate_points: usize = arg_value("--rate-points").map_or(if fast { 10 } else { 20 }, |v| {
        v.parse().expect("--rate-points")
    });
    let spec = scenario_sweep_spec(&scenario, rate_points);
    let topologies = named_topologies(&scenario);
    let mut cache = TopologyCache::new();
    let experiment = annotated_experiment(
        &scenario.params,
        &model_options,
        &mut cache,
        &topologies,
        spec,
    );
    let plan = experiment.plan();

    if let Some(path) = arg_value("--single-shot") {
        let result = experiment.run_parallel();
        std::fs::write(&path, result.to_json())?;
        println!(
            "single shot: scenario ({}), {} cells (fingerprint {:#018x}) → {path}",
            scenario.name,
            plan.num_cells(),
            plan.fingerprint()
        );
        return Ok(());
    }

    let shard = arg_value("--shard").map_or(Ok(ShardSpec::SOLO), |s| ShardSpec::parse(&s))?;
    let (journal, resume) = match (arg_value("--out"), arg_value("--resume")) {
        (Some(path), None) => (path, false),
        (None, Some(path)) => (path, true),
        (None, None) => (
            format!(
                "sweep_{}_{}_of_{}.jsonl",
                scenario.name,
                shard.index + 1,
                shard.count
            ),
            false,
        ),
        (Some(_), Some(_)) => return Err("--out and --resume are mutually exclusive".into()),
    };
    let progress = has_flag("--progress");
    let shard_cells = plan.shard_cells(shard).len();
    println!(
        "scenario ({}): shard {shard} = {shard_cells} of {} cells \
         (fingerprint {:#018x}) → {journal}{}",
        scenario.name,
        plan.num_cells(),
        plan.fingerprint(),
        if resume { " (resuming)" } else { "" }
    );
    let result = run_journaled(&experiment, shard, &journal, resume, |done, total| {
        if progress {
            eprintln!("[sweep_worker] {done}/{total} cells done (shard {shard})");
        }
    })
    .map_err(|e| format!("{journal}: {e}"))?;
    println!(
        "shard {shard} complete: {} cells journaled to {journal}",
        result.points.len()
    );
    Ok(())
}
