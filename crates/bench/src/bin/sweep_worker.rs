//! One shard of the standard scenario pattern sweep (the fig6 grid),
//! run to a resumable JSONL journal — the worker half of cross-machine
//! sweep sharding (`sweep_merge` recombines the journals).
//!
//! Run with:
//! `cargo run --release -p shg-bench --bin sweep_worker --
//!  [--scenario a|b|c|d] [--fast] [--rate-points N] [--add-rates r,..]
//!  [--alloc request-queue|full-scan]
//!  [--backend per-cell|reuse|batched|auto] [--lanes K] [--cache <dir>]
//!  --shard i/N (--out journal.jsonl | --resume journal.jsonl)
//!  [--progress]`
//!
//! The worker defaults to `--backend auto`: each cell group runs on
//! whichever backend a timed first-cell probe picks (the lane-parallel
//! batched core where setup dominates, network reuse where simulation
//! dominates). All backends are bit-identical, so the choice never
//! shows in the journal or the merged bytes.
//!
//! `--out` starts the shard from scratch (truncating any existing
//! file); `--resume` continues an interrupted journal after validating
//! that it was written under the same plan (spec, topologies,
//! latencies — the fingerprint) and shard, recomputing only the
//! missing cells: the finished journal is byte-identical to an
//! uninterrupted run's.
//!
//! `--single-shot result.json` ignores sharding and writes the full
//! `run_parallel` sweep JSON — the reference the CI `shard-smoke` and
//! `cache-smoke` jobs diff incremental executions against.
//!
//! `--cache <dir>` attaches the cross-run cell-result cache: cells any
//! earlier run stored (same case, pattern, rate, seed and simulator
//! config) are answered from disk, and only new cells simulate —
//! `--add-rates 0.31,0.44` *appends* extra shared-grid rates, the
//! widening move that keeps every existing cell's coordinates (and
//! therefore its cache identity) intact. The final
//! `cache: cached=… simulated=… total=…` line reports the split.
//!
//! Every worker of one sweep must be given the same scenario flags;
//! the journal header's plan fingerprint lets `sweep_merge` reject
//! mismatches instead of silently concatenating different sweeps.

use shg_bench::sweep::{
    annotated_experiment, cache_summary, configure_experiment, scenario_sweep_spec, TopologyCache,
};
use shg_bench::{arg_value, has_flag, named_topologies};
use shg_core::Scenario;
use shg_floorplan::ModelOptions;
use shg_sim::sweep::run_journaled;
use shg_sim::{ShardSpec, SimConfig};

const USAGE: &str = "\
Usage: sweep_worker [--scenario a|b|c|d] [--fast] [--rate-points N]
                    [--add-rates r1,r2,..] [--alloc request-queue|full-scan]
                    [--backend per-cell|reuse|batched|auto] [--lanes K]
                    [--cache <dir>]
                    [--shard i/N] (--out j.jsonl | --resume j.jsonl)
                    [--single-shot result.json] [--progress]

  --scenario     KNC scenario whose grid to sweep (default: a)
  --fast         fast-test simulator config and coarser floorplan model
  --rate-points  linear rate-grid points (default: 10 fast / 20 full)
  --add-rates    extra rates APPENDED to the shared grid — widens the
                 sweep without shifting existing cells' coordinates,
                 so a warm --cache re-simulates only these new cells
  --alloc        allocation policy (default: request-queue)
  --backend      execution backend (default: auto — a timed probe picks
                 batched or reuse per cell group; batched steps --lanes
                 cells in lockstep through the struct-of-arrays core;
                 all backends produce bit-identical results)
  --lanes        batch width of the batched/auto backends (default: 8)
  --cache        cell-result cache directory (cross-run, content
                 addressed; prints cached/simulated counts at the end)
  --shard i/N    run only the i-th of N strided shards (one-based i)
  --out          fresh journal path    --resume  continue a journal
  --single-shot  skip sharding, write the full run_parallel JSON
  --progress     log cells done (and the cached/simulated split)";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if has_flag("--help") {
        println!("{USAGE}");
        return Ok(());
    }
    let which = arg_value("--scenario").unwrap_or_else(|| "a".to_owned());
    let mut scenario =
        Scenario::by_name(&which).ok_or_else(|| format!("unknown scenario '{which}'"))?;
    let fast = has_flag("--fast");
    // Mirror fig6's pattern-sweep setup exactly, so a sharded worker
    // fleet reproduces the very grid the single-process binary prints.
    let model_options = ModelOptions {
        cell_scale: if fast { 4.0 } else { 2.0 },
        ..ModelOptions::default()
    };
    if fast {
        scenario.sim = SimConfig::fast_test();
    }
    scenario.sim.alloc = shg_bench::alloc_policy_from_args();
    let rate_points: usize = arg_value("--rate-points").map_or(if fast { 10 } else { 20 }, |v| {
        v.parse().expect("--rate-points")
    });
    let mut spec = scenario_sweep_spec(&scenario, rate_points);
    if let Some(extra) = arg_value("--add-rates") {
        // Appended after the hot-spot low-end override snapshotted the
        // shared grid: existing cells (including the hot-spot ones)
        // keep their coordinates, the new rates take fresh indices.
        for rate in extra.split(',') {
            let value: f64 = rate
                .trim()
                .parse()
                .map_err(|e| format!("--add-rates '{rate}': {e}"))?;
            if !value.is_finite() || value <= 0.0 {
                return Err(format!(
                    "--add-rates '{rate}': injection rates must be finite and positive"
                )
                .into());
            }
            spec.rates.push(value);
        }
    }
    let topologies = named_topologies(&scenario);
    let mut cache = TopologyCache::new();
    let mut experiment = annotated_experiment(
        &scenario.params,
        &model_options,
        &mut cache,
        &topologies,
        spec,
    );
    // The worker's default backend is auto (bit-identical to per-cell,
    // usually faster); an explicit --backend below overrides it.
    experiment.set_backend(shg_sim::ExecBackend::Auto);
    configure_experiment(&mut experiment);
    let experiment = experiment; // flags applied; execution is read-only
    let plan = experiment.plan();

    if let Some(path) = arg_value("--single-shot") {
        let result = experiment.run_parallel();
        std::fs::write(&path, result.to_json())?;
        println!(
            "single shot: scenario ({}), {} cells (fingerprint {:#018x}) → {path}",
            scenario.name,
            plan.num_cells(),
            plan.fingerprint()
        );
        if let Some(summary) = cache_summary(&experiment) {
            println!("{summary}");
        }
        return Ok(());
    }

    let shard = arg_value("--shard").map_or(Ok(ShardSpec::SOLO), |s| ShardSpec::parse(&s))?;
    let (journal, resume) = match (arg_value("--out"), arg_value("--resume")) {
        (Some(path), None) => (path, false),
        (None, Some(path)) => (path, true),
        (None, None) => (
            format!(
                "sweep_{}_{}_of_{}.jsonl",
                scenario.name,
                shard.index + 1,
                shard.count
            ),
            false,
        ),
        (Some(_), Some(_)) => return Err("--out and --resume are mutually exclusive".into()),
    };
    let progress = has_flag("--progress");
    let shard_cells = plan.shard_cells(shard).len();
    println!(
        "scenario ({}): shard {shard} = {shard_cells} of {} cells \
         (fingerprint {:#018x}) → {journal}{}",
        scenario.name,
        plan.num_cells(),
        plan.fingerprint(),
        if resume { " (resuming)" } else { "" }
    );
    let result = run_journaled(&experiment, shard, &journal, resume, |done, total| {
        if progress {
            eprintln!("[sweep_worker] {done}/{total} cells done (shard {shard})");
        }
    })
    .map_err(|e| format!("{journal}: {e}"))?;
    println!(
        "shard {shard} complete: {} cells journaled to {journal}",
        result.points.len()
    );
    if let Some(summary) = cache_summary(&experiment) {
        println!("{summary}");
    }
    Ok(())
}
