//! One shard of the standard scenario pattern sweep (the fig6 grid),
//! run to a resumable JSONL journal — the worker half of cross-machine
//! sweep sharding (`sweep_merge` recombines the journals) and, in
//! `--serve`/`--connect` mode, the worker half of the `shg_coord`
//! sweep service.
//!
//! Run with:
//! `cargo run --release -p shg-bench --bin sweep_worker --
//!  [--scenario a|b|c|d] [--fast] [--rate-points N] [--add-rates r,..]
//!  [--alloc request-queue|full-scan]
//!  [--backend per-cell|reuse|batched|auto] [--lanes K] [--cache <dir>]
//!  --shard i/N (--out journal.jsonl | --resume journal.jsonl)
//!  [--durable] [--progress]`
//!
//! The worker defaults to `--backend auto`: each cell group runs on
//! whichever backend a timed first-cell probe picks (the lane-parallel
//! batched core where setup dominates, network reuse where simulation
//! dominates). All backends are bit-identical, so the choice never
//! shows in the journal or the merged bytes.
//!
//! `--out` starts the shard from scratch (truncating any existing
//! file); `--resume` continues an interrupted journal after validating
//! that it was written under the same plan (spec, topologies,
//! latencies — the fingerprint) and shard, recomputing only the
//! missing cells: the finished journal is byte-identical to an
//! uninterrupted run's. `--durable` additionally `fsync`s the journal
//! after its header and every completed chunk.
//!
//! `--single-shot result.json` ignores sharding and writes the full
//! `run_parallel` sweep JSON — the reference the CI `shard-smoke`,
//! `cache-smoke` and `coord-smoke` jobs diff incremental executions
//! against.
//!
//! `--cache <dir>` attaches the cross-run cell-result cache: cells any
//! earlier run stored (same case, pattern, rate, seed and simulator
//! config) are answered from disk, and only new cells simulate —
//! `--add-rates 0.31,0.44` *appends* extra shared-grid rates, the
//! widening move that keeps every existing cell's coordinates (and
//! therefore its cache identity) intact. The final
//! `cache: cached=… simulated=… total=…` line reports the split.
//!
//! In **service mode** the worker ignores the plan flags and instead
//! rebuilds its experiment per request from the params `shg_coord`
//! ships over the wire (the worker-local `--backend`, `--lanes` and
//! `--cache` flags still apply): `--serve` speaks the framed protocol
//! on stdin/stdout (the coordinator spawns workers this way),
//! `--connect host:port` dials a listening coordinator over TCP. A
//! serving worker prints nothing to stdout — that is the protocol
//! channel — and exits cleanly on shutdown or coordinator hangup.
//!
//! Every worker of one sweep must be given the same scenario flags;
//! the journal header's plan fingerprint lets `sweep_merge` — and the
//! coordinator's handshake — reject mismatches instead of silently
//! concatenating different sweeps.

use shg_bench::sweep::{
    annotated_experiment, cache_summary, configure_experiment, request_params_from_args,
    request_setup, TopologyCache,
};
use shg_bench::{arg_value, cli_error, has_flag, named_topologies};
use shg_core::Scenario;
use shg_sim::sweep::{connect_with_backoff, run_journaled_durable, serve_worker};
use shg_sim::{Experiment, ShardSpec};
use shg_topology::Topology;

const USAGE: &str = "\
Usage: sweep_worker [--scenario a|b|c|d] [--fast] [--rate-points N]
                    [--add-rates r1,r2,..] [--alloc request-queue|full-scan]
                    [--routes dense|next-hop]
                    [--db <topology-db wire spec>]
                    [--faults <plan>] [--backend per-cell|reuse|batched|auto]
                    [--lanes K] [--cache <dir>]
                    [--shard i/N] (--out j.jsonl | --resume j.jsonl)
                    [--single-shot result.json] [--durable] [--progress]
                    [--serve | --connect host:port [--connect-patience SECS]]

  --scenario     KNC scenario whose grid to sweep (default: a)
  --db           sweep one expanded-grid topology instantiated from a
                 topology database in wire form (fields `/`-separated,
                 statements `;`-separated, e.g.
                 die/a/4x4/mesh;die/b/4x4/shg:sr=2) instead of the
                 scenario's built-in topology set; the case is named db
  --fast         fast-test simulator config and coarser floorplan model
  --rate-points  linear rate-grid points (default: 10 fast / 20 full)
  --add-rates    extra rates APPENDED to the shared grid — widens the
                 sweep without shifting existing cells' coordinates,
                 so a warm --cache re-simulates only these new cells
  --alloc        allocation policy (default: request-queue)
  --faults       deterministic fault-injection plan: an optional
                 drop|drain in-flight policy token followed by
                 comma-separated CYCLE:link:A-B / CYCLE:router:R kills
                 (e.g. drain,2000:link:3-4,2500:router:9); routes are
                 recomputed over the surviving graph at each fault
                 cycle, and link kills must name links present in every
                 swept topology (router kills apply everywhere)
  --routes       routing-table form (default: next-hop — compact O(1)
                 per-hop tables, bit-identical results to dense; db
                 topologies auto-upgrade to hierarchical multi-die
                 tables when the seam structure allows)
  --backend      execution backend (default: auto — a timed probe picks
                 batched or reuse per cell group; batched steps --lanes
                 cells in lockstep through the struct-of-arrays core;
                 all backends produce bit-identical results)
  --lanes        batch width of the batched/auto backends (default: 8)
  --cache        cell-result cache directory (cross-run, content
                 addressed; prints cached/simulated counts at the end)
  --shard i/N    run only the i-th of N strided shards (one-based i)
  --out          fresh journal path    --resume  continue a journal
  --single-shot  skip sharding, write the full run_parallel JSON
  --durable      fsync the journal after the header and every chunk
  --progress     log cells done (and the cached/simulated split)
  --serve        worker service mode: speak the shg_coord protocol on
                 stdin/stdout (plan flags come per request; --backend,
                 --lanes and --cache still configure this worker)
  --connect      like --serve, but dial a coordinator listening on TCP;
                 retried with capped jittered exponential backoff, so
                 the worker may be started before the coordinator
  --connect-patience  seconds to keep retrying --connect before giving
                 up with a usage error (default: 30)";

/// Service mode: serve coordinator requests until shutdown or hangup.
/// Topology sets for every scenario are built up front so one
/// long-lived worker can serve requests of any shape, reusing routing
/// tables and floorplan latencies across them via the topology cache.
/// Requests carrying a `db` param instead sweep the instantiated
/// expanded-grid topology; those are memoized per spec string (leaked
/// for the worker's lifetime, like the prebuilt sets) so repeat
/// requests reuse routing tables and floorplan latencies too.
fn serve() -> Result<(), Box<dyn std::error::Error>> {
    let scenarios: Vec<(String, Vec<(String, Topology)>)> = ["a", "b", "c", "d"]
        .iter()
        .map(|letter| {
            let scenario = Scenario::by_name(letter).expect("built-in scenario");
            (scenario.name.clone(), named_topologies(&scenario))
        })
        .collect();
    let mut db_store: std::collections::HashMap<String, &'static [(String, Topology)]> =
        std::collections::HashMap::new();
    let mut topo_cache = TopologyCache::new();
    let build = |params: &[(String, String)]| -> Result<Experiment<'_>, String> {
        let setup = request_setup(params)?;
        let topologies: &[(String, Topology)] = match setup.db_topology {
            Some(pair) => db_store
                .entry(
                    params
                        .iter()
                        .find(|(key, _)| key == "db")
                        .map(|(_, value)| value.clone())
                        .expect("db_topology implies a db param"),
                )
                .or_insert_with(|| Box::leak(vec![pair].into_boxed_slice())),
            None => scenarios
                .iter()
                .find(|(name, _)| *name == setup.scenario.name)
                .map(|(_, topologies)| topologies.as_slice())
                .expect("every scenario's topologies are prebuilt"),
        };
        let mut experiment = annotated_experiment(
            &setup.scenario.params,
            &setup.model_options,
            &mut topo_cache,
            topologies,
            setup.spec,
            setup.route_form,
        )?;
        experiment.set_backend(shg_sim::ExecBackend::Auto);
        configure_experiment(&mut experiment);
        eprintln!(
            "[sweep_worker] serving request: scenario ({}), {} cells (fingerprint {:#018x})",
            setup.scenario.name,
            experiment.num_points(),
            experiment.plan().fingerprint()
        );
        Ok(experiment)
    };
    if let Some(addr) = arg_value("--connect") {
        let patience = arg_value("--connect-patience").map_or(30, |secs| {
            secs.parse::<u64>()
                .unwrap_or_else(|e| cli_error(format!("--connect-patience {secs}: {e}")))
        });
        let patience = std::time::Duration::from_secs(patience);
        let stream = connect_with_backoff(&addr, patience).unwrap_or_else(|e| {
            cli_error(format!(
                "--connect {addr}: no coordinator answered within {}s of backoff retries \
                 (last error: {e}); start shg_coord --listen first or raise --connect-patience",
                patience.as_secs()
            ))
        });
        eprintln!("[sweep_worker] connected to coordinator at {addr}");
        let mut reader = stream.try_clone()?;
        let mut writer = stream;
        serve_worker(&mut reader, &mut writer, build)?;
    } else {
        let mut reader = std::io::stdin().lock();
        let mut writer = std::io::stdout().lock();
        serve_worker(&mut reader, &mut writer, build)?;
    }
    eprintln!("[sweep_worker] serve loop ended (shutdown or coordinator hangup)");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if has_flag("--help") {
        println!("{USAGE}");
        return Ok(());
    }
    if has_flag("--serve") || arg_value("--connect").is_some() {
        return serve();
    }
    // Mirror fig6's pattern-sweep setup exactly, so a sharded worker
    // fleet reproduces the very grid the single-process binary prints.
    let setup = request_setup(&request_params_from_args()).unwrap_or_else(|e| cli_error(e));
    let scenario = setup.scenario;
    let topologies = match setup.db_topology {
        Some(pair) => vec![pair],
        None => named_topologies(&scenario),
    };
    let mut cache = TopologyCache::new();
    let mut experiment = annotated_experiment(
        &scenario.params,
        &setup.model_options,
        &mut cache,
        &topologies,
        setup.spec,
        setup.route_form,
    )
    .unwrap_or_else(|e| cli_error(e));
    // The worker's default backend is auto (bit-identical to per-cell,
    // usually faster); an explicit --backend below overrides it.
    experiment.set_backend(shg_sim::ExecBackend::Auto);
    configure_experiment(&mut experiment);
    let experiment = experiment; // flags applied; execution is read-only
    let plan = experiment.plan();

    if let Some(path) = arg_value("--single-shot") {
        let result = experiment.run_parallel();
        std::fs::write(&path, result.to_json())?;
        println!(
            "single shot: scenario ({}), {} cells (fingerprint {:#018x}) → {path}",
            scenario.name,
            plan.num_cells(),
            plan.fingerprint()
        );
        if let Some(summary) = cache_summary(&experiment) {
            println!("{summary}");
        }
        return Ok(());
    }

    let shard = arg_value("--shard").map_or(ShardSpec::SOLO, |s| {
        ShardSpec::parse(&s).unwrap_or_else(|e| cli_error(e))
    });
    let (journal, resume) = match (arg_value("--out"), arg_value("--resume")) {
        (Some(path), None) => (path, false),
        (None, Some(path)) => (path, true),
        (None, None) => (
            format!(
                "sweep_{}_{}_of_{}.jsonl",
                scenario.name,
                shard.index + 1,
                shard.count
            ),
            false,
        ),
        (Some(_), Some(_)) => cli_error("--out and --resume are mutually exclusive"),
    };
    let progress = has_flag("--progress");
    let shard_cells = plan.shard_cells(shard).len();
    println!(
        "scenario ({}): shard {shard} = {shard_cells} of {} cells \
         (fingerprint {:#018x}) → {journal}{}",
        scenario.name,
        plan.num_cells(),
        plan.fingerprint(),
        if resume { " (resuming)" } else { "" }
    );
    let result = run_journaled_durable(
        &experiment,
        shard,
        &journal,
        resume,
        has_flag("--durable"),
        |done, total| {
            if progress {
                eprintln!("[sweep_worker] {done}/{total} cells done (shard {shard})");
            }
        },
    )
    .unwrap_or_else(|e| cli_error(format!("journal {journal}: {e}")));
    println!(
        "shard {shard} complete: {} cells journaled to {journal}",
        result.points.len()
    );
    if let Some(summary) = cache_summary(&experiment) {
        println!("{summary}");
    }
    Ok(())
}
