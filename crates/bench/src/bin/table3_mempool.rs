//! E2 — regenerates Table III: toolchain validation against the published
//! MemPool implementation results.
//!
//! Run with: `cargo run --release -p shg-bench --bin table3_mempool`

use shg_core::{report, MempoolReference, Toolchain};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let reference = MempoolReference::new();
    let toolchain = Toolchain {
        sim: reference.sim.clone(),
        ..Toolchain::default()
    };
    let eval = toolchain.evaluate(&reference.params, &reference.topology())?;

    println!("=== Table III — MemPool validation ===");
    println!(
        "Stand-in: {} at {:.0} MHz ({} tiles × {:.1} MGE)\n",
        reference.topology(),
        reference.params.frequency.value() / 1e6,
        reference.params.grid.num_tiles(),
        reference.params.endpoint_area.as_mega(),
    );
    println!(
        "{:<12} {:>12} {:>12} {:<8} {:>9}",
        "Metric", "Published", "Predicted", "Unit", "Error"
    );
    println!("{}", "-".repeat(58));
    println!(
        "{}",
        report::validation_row(
            "Area",
            reference.correct_area_mm2,
            eval.total_area.value(),
            "mm2"
        )
    );
    println!(
        "{}",
        report::validation_row(
            "Power",
            reference.correct_power_w,
            eval.total_power.value(),
            "W"
        )
    );
    println!(
        "{}",
        report::validation_row(
            "Latency",
            reference.correct_latency_cycles,
            eval.zero_load_latency,
            "cycles"
        )
    );
    println!(
        "{}",
        report::validation_row(
            "Throughput",
            reference.correct_throughput * 100.0,
            eval.saturation_throughput * 100.0,
            "%"
        )
    );
    println!(
        "\nPaper's Table III for comparison: area 21.16 → 24.26 mm² (15%),\n\
         power 1.55 → 1.447 W (7%), latency 5 → 10 cycles (100%),\n\
         throughput 38% → 25% (34%). The latency over-estimation is the\n\
         expected artifact of the ≥1-cycle-per-router/link assumption on a\n\
         latency-optimized design (Section IV-C)."
    );
    // The paper's 4-cycle correction: 1 injection + 3 routers.
    let corrected = eval.zero_load_latency - 4.0;
    println!(
        "With the paper's 4-cycle correction: {:.1} cycles ({:.0}% off).",
        corrected,
        ((corrected - reference.correct_latency_cycles) / reference.correct_latency_cycles * 100.0)
            .abs()
    );
    Ok(())
}
