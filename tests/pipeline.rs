//! Integration tests spanning all crates: topology → floorplan → routing
//! → simulation → toolchain.

use sparse_hamming_graph::core::{
    analytic_saturation, MempoolReference, PerformanceMode, Scenario, SparseHammingConfig,
    Toolchain,
};
use sparse_hamming_graph::floorplan::{predict, ModelOptions};
use sparse_hamming_graph::sim::{Network, SimConfig, TrafficPattern};
use sparse_hamming_graph::topology::{generators, metrics, routing};

fn fast_toolchain() -> Toolchain {
    Toolchain {
        model_options: ModelOptions {
            cell_scale: 4.0,
            ..ModelOptions::default()
        },
        sim: SimConfig::fast_test(),
        mode: PerformanceMode::Analytic,
        ..Toolchain::default()
    }
}

#[test]
fn full_pipeline_on_scenario_a() {
    let scenario = Scenario::knc_a();
    let shg = scenario.shg.build();
    let eval = fast_toolchain()
        .evaluate(&scenario.params, &shg)
        .expect("pipeline runs");
    assert!(eval.area_overhead > 0.0 && eval.area_overhead < 1.0);
    assert!(eval.zero_load_latency > 0.0);
    assert!(eval.saturation_throughput > 0.0 && eval.saturation_throughput <= 1.0);
    assert!(eval.noc_power.value() > 0.0);
}

#[test]
fn floorplan_latencies_feed_the_simulator() {
    // The floorplan model's per-link latencies must slot directly into
    // the simulator — the core interface of the paper's toolchain (Fig. 3).
    let scenario = Scenario::knc_a();
    let shg = scenario.shg.build();
    let prediction = predict(
        &scenario.params,
        &shg,
        &ModelOptions {
            cell_scale: 4.0,
            ..ModelOptions::default()
        },
    );
    let routes = routing::default_routes(&shg).expect("routes");
    let mut network = Network::new(
        &shg,
        &routes,
        &prediction.estimates.link_latencies,
        SimConfig::fast_test(),
    );
    let outcome = network.run(0.02, TrafficPattern::UniformRandom);
    assert!(outcome.stable, "{outcome:?}");
    assert!(outcome.avg_packet_latency > 0.0);
}

#[test]
fn paper_configs_stay_within_budget_ordering() {
    // For each scenario, the paper's SHG config must be cheaper than the
    // flattened butterfly and more performant than the mesh.
    for scenario in [Scenario::knc_a(), Scenario::knc_b()] {
        let toolchain = fast_toolchain();
        let grid = scenario.params.grid;
        let mesh = toolchain
            .evaluate(&scenario.params, &generators::mesh(grid))
            .expect("mesh");
        let shg = toolchain
            .evaluate(&scenario.params, &scenario.shg.build())
            .expect("shg");
        let fb = toolchain
            .evaluate(&scenario.params, &generators::flattened_butterfly(grid))
            .expect("fb");
        assert!(
            shg.area_overhead < fb.area_overhead,
            "scenario {}: shg {} < fb {}",
            scenario.name,
            shg.area_overhead,
            fb.area_overhead
        );
        assert!(
            shg.saturation_throughput > mesh.saturation_throughput,
            "scenario {}",
            scenario.name
        );
        assert!(
            shg.zero_load_latency < mesh.zero_load_latency,
            "scenario {}",
            scenario.name
        );
    }
}

#[test]
fn slimnoc_applicable_only_for_128_tiles() {
    // Fig. 6 footnote: SlimNoC requires N = 2p² for a prime power p.
    assert!(generators::slim_noc(Scenario::knc_a().params.grid).is_err());
    assert!(generators::slim_noc(Scenario::knc_c().params.grid).is_ok());
}

#[test]
fn scenario_c_evaluates_slimnoc_end_to_end() {
    let scenario = Scenario::knc_c();
    let slim = generators::slim_noc(scenario.params.grid).expect("128 tiles");
    let eval = fast_toolchain()
        .evaluate(&scenario.params, &slim)
        .expect("slimnoc evaluates");
    assert_eq!(eval.router_radix, 12);
    let mesh_eval = fast_toolchain()
        .evaluate(&scenario.params, &generators::mesh(scenario.params.grid))
        .expect("mesh");
    // Diameter 2 buys SlimNoC much higher saturation throughput than the
    // mesh. Its zero-load latency stays comparable (not dramatically
    // lower): the few hops ride physically long, multi-cycle wires —
    // exactly the effect the paper's floorplan-aware model exists to
    // capture (design principle ❹).
    assert!(
        eval.saturation_throughput > 1.5 * mesh_eval.saturation_throughput,
        "slim {} vs mesh {}",
        eval.saturation_throughput,
        mesh_eval.saturation_throughput
    );
    assert!(
        eval.zero_load_latency < 2.0 * mesh_eval.zero_load_latency,
        "slim {} vs mesh {}",
        eval.zero_load_latency,
        mesh_eval.zero_load_latency
    );
    // And it pays for it in cost (Fig. 6c: SlimNoC is expensive).
    assert!(eval.area_overhead > mesh_eval.area_overhead);
}

#[test]
fn mempool_validation_reproduces_table3_shape() {
    let reference = MempoolReference::new();
    let toolchain = Toolchain {
        sim: reference.sim.clone(),
        mode: PerformanceMode::Analytic,
        model_options: ModelOptions {
            cell_scale: 2.0,
            ..ModelOptions::default()
        },
        ..Toolchain::default()
    };
    let eval = toolchain
        .evaluate(&reference.params, &reference.topology())
        .expect("mempool evaluates");
    // Area and power within ±35% of the published values (paper: 15%, 7%).
    let area_err =
        (eval.total_area.value() - reference.correct_area_mm2).abs() / reference.correct_area_mm2;
    assert!(area_err < 0.35, "area error {area_err}");
    let power_err =
        (eval.total_power.value() - reference.correct_power_w).abs() / reference.correct_power_w;
    assert!(power_err < 0.35, "power error {power_err}");
    // Latency must be over-estimated (the paper's key observation).
    assert!(
        eval.zero_load_latency > reference.correct_latency_cycles,
        "latency {} should exceed published {}",
        eval.zero_load_latency,
        reference.correct_latency_cycles
    );
}

#[test]
fn sparse_hamming_family_interpolates_diameter() {
    // Mesh → paper config → flattened butterfly: the diameter must fall
    // monotonically, spanning [2, R+C−2] (Table I).
    let mesh = SparseHammingConfig::mesh(8, 8).build();
    let paper = SparseHammingConfig::new(8, 8, [4], [2, 5])
        .expect("valid")
        .build();
    let fb = SparseHammingConfig::flattened_butterfly(8, 8).build();
    let (d_mesh, d_paper, d_fb) = (
        metrics::diameter(&mesh),
        metrics::diameter(&paper),
        metrics::diameter(&fb),
    );
    assert_eq!(d_mesh, 14);
    assert_eq!(d_fb, 2);
    assert!(d_paper > d_fb && d_paper < d_mesh);
}

#[test]
fn analytic_saturation_brackets_simulated() {
    // The analytic channel-load bound should upper-bound (roughly) the
    // simulated saturation point for the mesh.
    let mesh = generators::mesh(sparse_hamming_graph::topology::Grid::new(4, 4));
    let routes = routing::default_routes(&mesh).expect("routes");
    let analytic = analytic_saturation(&mesh, &routes);
    let latencies = vec![sparse_hamming_graph::units::Cycles::one(); mesh.num_links()];
    let simulated = sparse_hamming_graph::sim::saturation_throughput(
        &mesh,
        &routes,
        &latencies,
        &SimConfig::fast_test(),
        TrafficPattern::UniformRandom,
        sparse_hamming_graph::sim::SaturationSearch {
            resolution: 0.02,
            ..Default::default()
        },
    );
    assert!(
        simulated <= analytic * 1.15,
        "simulated {simulated} should not exceed analytic bound {analytic} by much"
    );
    assert!(
        simulated >= analytic * 0.3,
        "simulated {simulated} should be within a small factor of {analytic}"
    );
}
