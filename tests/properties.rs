//! Property-based tests on the core data structures and invariants,
//! spanning the topology, routing and core crates.

use proptest::prelude::*;

use sparse_hamming_graph::core::SparseHammingConfig;
use sparse_hamming_graph::topology::{generators, metrics, routing, Grid, TileId};

/// Strategy for a small grid (both dimensions ≥ 2 so skip sets can exist).
fn grid_dims() -> impl Strategy<Value = (u16, u16)> {
    (2u16..=8, 2u16..=8)
}

/// Strategy for a sparse Hamming configuration over the given dims.
fn shg_config() -> impl Strategy<Value = SparseHammingConfig> {
    grid_dims().prop_flat_map(|(r, c)| {
        let sr =
            proptest::collection::btree_set(2u16..c.max(3), 0..=(c.saturating_sub(2)) as usize);
        let sc =
            proptest::collection::btree_set(2u16..r.max(3), 0..=(r.saturating_sub(2)) as usize);
        (sr, sc).prop_map(move |(sr, sc)| {
            let sr = sr.into_iter().filter(|&x| x < c).collect::<Vec<_>>();
            let sc = sc.into_iter().filter(|&x| x < r).collect::<Vec<_>>();
            SparseHammingConfig::new(r, c, sr, sc).expect("filtered to valid range")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every sparse Hamming graph contains its mesh base and therefore
    /// provides physically minimal paths (Table I, "present" = ✓).
    #[test]
    fn shg_contains_mesh_and_minimal_paths(config in shg_config()) {
        let topology = config.build();
        let mesh = generators::mesh(config.grid());
        for link in mesh.links() {
            prop_assert!(topology.has_link(link.a, link.b));
        }
        prop_assert!(metrics::minimal_paths_present(&topology));
    }

    /// All SHG links are row- or column-aligned (subgraph of the 2D
    /// Hamming graph).
    #[test]
    fn shg_links_are_aligned(config in shg_config()) {
        let topology = config.build();
        let stats = metrics::link_stats(&topology);
        prop_assert_eq!(stats.aligned_fraction, 1.0);
    }

    /// Adding skip links never increases the diameter, and the diameter
    /// stays within Table I's interval [2, R+C−2].
    #[test]
    fn shg_diameter_bounds(config in shg_config()) {
        let topology = config.build();
        let d = metrics::diameter(&topology);
        let mesh_d = u32::from(config.rows() + config.cols()) - 2;
        prop_assert!(d <= mesh_d);
        if config.rows() > 1 && config.cols() > 1 {
            prop_assert!(d >= 2 || mesh_d < 2);
        }
    }

    /// Row-column routing on any SHG is hop-minimal, structurally valid
    /// and deadlock-free.
    #[test]
    fn shg_routing_invariants(config in shg_config()) {
        let topology = config.build();
        let routes = routing::build_routes(&topology, routing::RoutingAlgorithm::RowColumn)
            .expect("row-column applies to every SHG");
        prop_assert!(routes.validate(&topology));
        prop_assert!(routes.is_hop_minimal(&topology));
        prop_assert!(routes.is_deadlock_free(&topology));
    }

    /// The number of links matches the closed-form count.
    #[test]
    fn shg_link_count_formula(config in shg_config()) {
        let topology = config.build();
        let (r, c) = (config.rows() as usize, config.cols() as usize);
        let mesh_links = r * (c - 1) + c * (r - 1);
        prop_assert_eq!(topology.num_links(), mesh_links + config.num_extra_links());
    }

    /// Routed paths never revisit a tile (simple paths).
    #[test]
    fn routed_paths_are_simple(config in shg_config()) {
        let topology = config.build();
        let routes = routing::default_routes(&topology).expect("routes");
        let grid = topology.grid();
        for src in grid.tiles() {
            for dst in grid.tiles() {
                let path = routes.path(src, dst);
                let mut seen = std::collections::HashSet::new();
                seen.insert(src);
                for hop in path {
                    prop_assert!(seen.insert(hop.to), "revisit in {src}→{dst}");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// BFS distances are a metric: symmetric and triangle-inequal, for
    /// arbitrary generated topologies (mesh ∪ random extra aligned links).
    #[test]
    fn hop_distance_is_a_metric(
        (r, c) in (2u16..=6, 2u16..=6),
        seed in 0u64..1000,
    ) {
        let grid = Grid::new(r, c);
        let topology = generators::mesh(grid);
        let dist = metrics::DistanceMatrix::hops(&topology);
        let n = grid.num_tiles();
        let t = |i: usize| TileId::new(i as u32);
        let _ = seed;
        for a in 0..n {
            prop_assert_eq!(dist.distance(t(a), t(a)), 0);
            for b in 0..n {
                prop_assert_eq!(dist.distance(t(a), t(b)), dist.distance(t(b), t(a)));
                for d in 0..n {
                    prop_assert!(
                        dist.distance(t(a), t(d))
                            <= dist.distance(t(a), t(b)) + dist.distance(t(b), t(d))
                    );
                }
            }
        }
    }

    /// Ring cycles visit every tile exactly once for any grid shape.
    #[test]
    fn ring_is_hamiltonian((r, c) in (2u16..=8, 2u16..=8)) {
        let grid = Grid::new(r, c);
        let ring = generators::ring(grid);
        let order = generators::cycle_order_of(&ring).expect("ring is a cycle");
        prop_assert_eq!(order.len(), grid.num_tiles());
        let unique: std::collections::HashSet<_> = order.iter().collect();
        prop_assert_eq!(unique.len(), grid.num_tiles());
    }

    /// Torus and folded torus are isomorphic: same degree sequence and
    /// same diameter.
    #[test]
    fn folded_torus_isomorphic_to_torus((r, c) in (3u16..=8, 3u16..=8)) {
        let grid = Grid::new(r, c);
        let torus = generators::torus(grid);
        let folded = generators::folded_torus(grid);
        prop_assert_eq!(torus.num_links(), folded.num_links());
        prop_assert_eq!(
            metrics::diameter(&torus),
            metrics::diameter(&folded)
        );
    }
}
