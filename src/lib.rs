//! Umbrella crate for the Sparse Hamming Graph NoC reproduction.
//!
//! This crate re-exports the sub-crates of the workspace so that downstream
//! users can depend on a single crate:
//!
//! * [`units`] — physical-quantity newtypes and technology functions,
//! * [`topology`] — the NoC topology library (graph core, established
//!   topologies, metrics, design-principle compliance),
//! * [`floorplan`] — the approximate floorplanning and link-routing model
//!   for area, power and link-latency prediction,
//! * [`sim`] — the cycle-accurate NoC simulator,
//! * [`core`] — the sparse Hamming graph topology, the prediction toolchain
//!   and the customization strategy.
//!
//! # Examples
//!
//! ```
//! use sparse_hamming_graph::core::SparseHammingConfig;
//!
//! // Scenario (a) of the paper: 8×8 tiles, SR = {4}, SC = {2, 5}.
//! let config = SparseHammingConfig::new(8, 8, [4], [2, 5]).expect("valid configuration");
//! assert_eq!(config.rows(), 8);
//! ```

pub use shg_core as core;
pub use shg_floorplan as floorplan;
pub use shg_sim as sim;
pub use shg_topology as topology;
pub use shg_units as units;
