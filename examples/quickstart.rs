//! Quickstart: build a sparse Hamming graph, predict its cost and
//! performance on a KNC-like 22 nm architecture, and compare it to the
//! mesh and flattened-butterfly extremes.
//!
//! Run with: `cargo run --release --example quickstart`

use sparse_hamming_graph::core::{report, Scenario, Toolchain};
use sparse_hamming_graph::topology::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Scenario (a) of the paper: 64 tiles of 35 MGE, 512 bits/cycle
    // links, 1.2 GHz, AXI transport.
    let scenario = Scenario::knc_a();
    println!(
        "Scenario ({}): {} — budget {}% NoC area overhead",
        scenario.name,
        scenario.description,
        scenario.area_budget * 100.0
    );
    println!("Paper's customized configuration: {}\n", scenario.shg);

    let toolchain = Toolchain::default();
    let grid = scenario.params.grid;

    let mesh = generators::mesh(grid);
    let shg = scenario.shg.build();
    let fb = generators::flattened_butterfly(grid);

    let evaluations = vec![
        toolchain.evaluate(&scenario.params, &mesh)?,
        toolchain.evaluate(&scenario.params, &shg)?,
        toolchain.evaluate(&scenario.params, &fb)?,
    ];
    println!("{}", report::evaluation_table(&evaluations));
    println!(
        "The sparse Hamming graph sits between the mesh (cheap, slow) and\n\
         the flattened butterfly (fast, expensive) — and its position on\n\
         that spectrum is set by the SR/SC parameters."
    );
    Ok(())
}
