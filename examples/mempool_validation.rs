//! Table III — validating the prediction toolchain against the published
//! MemPool implementation numbers (Section IV-C of the paper).
//!
//! MemPool is a 256-core shared-L1 cluster with a low-latency hierarchical
//! interconnect, implemented in 22 nm. The paper runs its model on the
//! MemPool architecture and compares predictions against the
//! place-and-route results. We reproduce that experiment with a
//! MemPool-like stand-in (see DESIGN.md, substitution #4).
//!
//! Run with: `cargo run --release --example mempool_validation`

use sparse_hamming_graph::core::{report, MempoolReference, Toolchain};
use sparse_hamming_graph::sim::{SaturationSearch, TrafficPattern};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let reference = MempoolReference::new();
    let topology = reference.topology();
    println!("MemPool-like validation target: {topology}");
    println!(
        "  {} tiles × ({} cores + banks ≈ {:.1} MGE) at {:.0} MHz\n",
        reference.params.grid.num_tiles(),
        reference.params.endpoints_per_tile,
        reference.params.endpoint_area.as_mega(),
        reference.params.frequency.value() / 1e6
    );

    let toolchain = Toolchain {
        sim: reference.sim.clone(),
        pattern: TrafficPattern::UniformRandom,
        search: SaturationSearch::default(),
        ..Toolchain::default()
    };
    let eval = toolchain.evaluate(&reference.params, &topology)?;

    println!(
        "{:<12} {:>12} {:>12} {:<8} {:>9}",
        "Metric", "Published", "Predicted", "Unit", "Error"
    );
    println!("{}", "-".repeat(58));
    println!(
        "{}",
        report::validation_row(
            "Area",
            reference.correct_area_mm2,
            eval.total_area.value(),
            "mm2"
        )
    );
    println!(
        "{}",
        report::validation_row(
            "Power",
            reference.correct_power_w,
            eval.total_power.value(),
            "W"
        )
    );
    println!(
        "{}",
        report::validation_row(
            "Latency",
            reference.correct_latency_cycles,
            eval.zero_load_latency,
            "cycles"
        )
    );
    println!(
        "{}",
        report::validation_row(
            "Throughput",
            reference.correct_throughput * 100.0,
            eval.saturation_throughput * 100.0,
            "%"
        )
    );
    println!(
        "\nAs in the paper, the model over-estimates MemPool's latency:\n\
         MemPool is aggressively latency-optimized and violates the model's\n\
         ≥1-cycle-per-router/link assumption (Section IV-C discusses the\n\
         4-cycle correction that brings the error to 20%)."
    );
    Ok(())
}
