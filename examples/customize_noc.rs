//! The NoC customization strategy of Section V-a, end to end.
//!
//! Starts from the simplest sparse Hamming graph (a mesh), and repeatedly
//! grows the skip sets SR/SC — guided by the prediction toolchain — until
//! the 40% area budget is exhausted, maximizing saturation throughput
//! (priority 1) and minimizing zero-load latency (priority 2).
//!
//! Run with: `cargo run --release --example customize_noc [-- <scenario>]`
//! where `<scenario>` is one of `a`, `b`, `c`, `d` (default `a`).

use sparse_hamming_graph::core::{customize, DesignGoals, Scenario, Toolchain};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "a".to_owned());
    let scenario = Scenario::by_name(&name).ok_or_else(|| format!("unknown scenario '{name}'"))?;
    println!(
        "Customizing a sparse Hamming graph for scenario ({}): {}",
        scenario.name, scenario.description
    );
    println!(
        "Design goal: max throughput, then min latency, area overhead ≤ {:.0}%\n",
        scenario.area_budget * 100.0
    );

    // The customization loop ranks thousands of candidates, so it uses the
    // fast preset: analytic saturation bound + coarse detailed routing.
    let toolchain = Toolchain::fast();
    let goals = DesignGoals {
        area_budget: scenario.area_budget,
    };
    let trace = customize(&toolchain, &scenario.params, goals)?;

    println!(
        "{:<28} {:>10} {:>10} {:>12} {:>12}",
        "Configuration", "Links", "AreaOvh[%]", "ZLL[cycles]", "SatThr[%]"
    );
    println!("{}", "-".repeat(78));
    for step in &trace.steps {
        println!(
            "{:<28} {:>10} {:>10.1} {:>12.1} {:>12.1}",
            step.config.to_string(),
            step.config.build().num_links(),
            step.evaluation.area_overhead * 100.0,
            step.evaluation.zero_load_latency,
            step.evaluation.saturation_throughput * 100.0,
        );
    }
    let best = trace.best();
    println!(
        "\nSelected configuration: {} at {:.1}% area overhead",
        best.config,
        best.evaluation.area_overhead * 100.0
    );
    println!("Paper's choice for this scenario: {}", scenario.shg);
    println!(
        "(Differences are expected: the paper customized against its own\n\
         calibrated 22 nm model; the strategy and the trade-off curve are\n\
         what this reproduction validates.)"
    );
    Ok(())
}
