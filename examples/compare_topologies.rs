//! Fig. 6-style comparison of all applicable topologies on one scenario,
//! using the full prediction toolchain (floorplan model + cycle-accurate
//! simulation).
//!
//! Run with: `cargo run --release --example compare_topologies [-- <scenario>]`
//! where `<scenario>` is one of `a`, `b`, `c`, `d` (default `a`).
//! Expect a few minutes for the 128-tile scenarios.

use sparse_hamming_graph::core::{report, Evaluation, Scenario, Toolchain};
use sparse_hamming_graph::topology::{generators, Topology};

fn applicable_topologies(scenario: &Scenario) -> Vec<Topology> {
    let grid = scenario.params.grid;
    let mut topologies = vec![
        generators::ring(grid),
        generators::mesh(grid),
        generators::torus(grid),
        generators::folded_torus(grid),
    ];
    if let Ok(hc) = generators::hypercube(grid) {
        topologies.push(hc);
    }
    if let Ok(slim) = generators::slim_noc(grid) {
        topologies.push(slim);
    }
    topologies.push(generators::flattened_butterfly(grid));
    topologies.push(scenario.shg.build());
    topologies
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "a".to_owned());
    let scenario = Scenario::by_name(&name).ok_or_else(|| format!("unknown scenario '{name}'"))?;
    println!(
        "Scenario ({}): {} — uniform random traffic, hop-minimal routing",
        scenario.name, scenario.description
    );
    let toolchain = Toolchain::default();
    let mut evaluations: Vec<Evaluation> = Vec::new();
    for topology in applicable_topologies(&scenario) {
        eprintln!("evaluating {topology}…");
        evaluations.push(toolchain.evaluate(&scenario.params, &topology)?);
    }
    println!("\n{}", report::evaluation_table(&evaluations));

    // The paper's headline: among all topologies within the 40% area
    // budget, the customized sparse Hamming graph has the highest
    // saturation throughput.
    let within_budget: Vec<&Evaluation> = evaluations
        .iter()
        .filter(|e| e.area_overhead <= scenario.area_budget)
        .collect();
    if let Some(best) = within_budget.iter().max_by(|a, b| {
        a.saturation_throughput
            .partial_cmp(&b.saturation_throughput)
            .expect("finite")
    }) {
        println!(
            "Highest throughput within the {:.0}% area budget: {} ({:.1}%)",
            scenario.area_budget * 100.0,
            best.name,
            best.saturation_throughput * 100.0
        );
    }
    Ok(())
}
