//! The sparse Hamming graph construction scheme of Fig. 2, rendered as
//! ASCII art: the mesh base plus the skip-link classes added by SR and SC.
//!
//! Run with: `cargo run --example construction`

use sparse_hamming_graph::core::SparseHammingConfig;
use sparse_hamming_graph::topology::{metrics, TileCoord};

/// Draws one row of the grid with its row links as ASCII arcs.
fn draw_row_links(config: &SparseHammingConfig) {
    let cols = config.cols() as usize;
    println!("Row links (mesh base '-' plus each x ∈ SR):");
    // Mesh base.
    let mut base = String::new();
    for c in 0..cols {
        base.push('o');
        if c + 1 < cols {
            base.push_str("---");
        }
    }
    println!("  x=1: {base}");
    for &x in config.sr() {
        let mut line = String::from("  x=");
        line.push_str(&x.to_string());
        line.push_str(": ");
        for start in 0..cols.saturating_sub(x as usize) {
            let mut arc = " ".repeat(4 * start);
            arc.push('o');
            arc.push_str(&"~".repeat(4 * x as usize - 1));
            arc.push('o');
            println!("{line}{arc}");
            line = " ".repeat(7);
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The example configuration of Fig. 2: a small grid with one row skip
    // class and one column skip class.
    let config = SparseHammingConfig::new(4, 6, [3], [2])?;
    println!("Construction: {config}");
    println!(
        "Design space for this grid: 2^(R+C-4) = {} configurations\n",
        SparseHammingConfig::design_space_size(4, 6)
    );
    draw_row_links(&config);

    let topology = config.build();
    println!("\nResulting topology: {topology}");
    println!("  router radix: {}", topology.max_degree());
    println!("  diameter:     {}", metrics::diameter(&topology));
    println!("  avg hops:     {:.2}", metrics::average_hops(&topology));
    let stats = metrics::link_stats(&topology);
    println!(
        "  links:        {} (mean length {:.2} tiles, all aligned: {})",
        stats.count,
        stats.mean_length,
        stats.aligned_fraction == 1.0
    );

    // Every link of a sparse Hamming graph is row- or column-aligned: the
    // topology is a subgraph of the 2D Hamming graph over the grid.
    let sample = TileCoord::new(1, 0);
    let id = topology.grid().id(sample);
    println!("\nNeighbors of tile {sample}:");
    for &(neighbor, _) in topology.neighbors(id) {
        println!("  ↔ {}", topology.coord(neighbor));
    }
    Ok(())
}
